#ifndef LEARNEDSQLGEN_FUZZ_TRACE_H_
#define LEARNEDSQLGEN_FUZZ_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "fsm/generation_fsm.h"

namespace lsg {

/// A replayable fuzzing episode: everything needed to rebuild the exact
/// same query deterministically — the database (by name + scale), the FSM
/// profile and vocabulary sampling width, and the chosen action-token-id
/// sequence. Failure artifacts additionally carry the violated oracle and
/// a human-readable detail line.
struct EpisodeTrace {
  std::string dataset;       ///< "score" | "tpch" | "job" | "xuetang"
  int profile = 0;           ///< index into FuzzProfiles()
  double scale = 1.0;        ///< dataset scale factor
  int values_per_column = 8; ///< vocabulary sampling width
  uint64_t seed = 0;         ///< episode RNG seed (provenance only)
  uint64_t episode = 0;      ///< episode ordinal within the run
  std::string oracle;        ///< violated oracle name (empty = clean)
  std::string detail;        ///< failure description (single line)
  std::string sql;           ///< rendered SQL (informational, single line)
  std::vector<int> actions;  ///< chosen action token ids, in order
};

/// Serializes a trace to the corpus text format (see DESIGN.md):
///   lsgfuzz-trace v1
///   dataset <name> / profile <i> / scale <f> / values <k> / seed <s> /
///   episode <e> / oracle <name> / detail <text> / sql <text> /
///   actions <id id ...> / end
std::string TraceToString(const EpisodeTrace& trace);
StatusOr<EpisodeTrace> ParseTrace(const std::string& text);

Status SaveTrace(const EpisodeTrace& trace, const std::string& path);
StatusOr<EpisodeTrace> LoadTrace(const std::string& path);

/// Uniform random walk over the FSM that records every chosen action token
/// id into `actions` (cleared first). Behaviorally identical to
/// RandomWalkQuery for the same Rng stream.
StatusOr<QueryAst> RecordedRandomWalk(GenerationFsm* fsm, Rng* rng,
                                      std::vector<int>* actions);

/// Drives the FSM with a recorded action sequence, repairing FSM-illegal
/// steps so that *any* action subsequence yields a legal query: illegal
/// recorded actions are skipped, and once the sequence is exhausted the
/// query is completed deterministically by always taking the lowest valid
/// action id (the FSM's budget masking bounds this). Sets `*exact` to true
/// iff no repair was needed (pure replay). Used both by `lsgfuzz --replay`
/// and by the shrinker's candidate evaluation.
StatusOr<QueryAst> ReplayActions(GenerationFsm* fsm,
                                 const std::vector<int>& actions, bool* exact);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_TRACE_H_
