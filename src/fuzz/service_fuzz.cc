#include "fuzz/service_fuzz.h"

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/sync.h"
#include "common/string_util.h"
#include "fuzz/test_databases.h"
#include "service/generation_service.h"

namespace lsg {

namespace {

Constraint RandomConstraint(Rng* rng) {
  ConstraintMetric metric = rng->Bernoulli(0.5)
                                ? ConstraintMetric::kCardinality
                                : ConstraintMetric::kCost;
  double a = 1.0 + static_cast<double>(rng->Uniform(200));
  if (rng->Bernoulli(0.5)) {
    return Constraint::Point(metric, a);
  }
  return Constraint::Range(metric, a, a * (2 + rng->Uniform(6)));
}

}  // namespace

Status FuzzGenerationService(const ServiceFuzzOptions& options) {
  LSG_ASSIGN_OR_RETURN(Database db,
                       BuildNamedDatabase(options.dataset, options.scale));

  for (int round = 0; round < options.rounds; ++round) {
    Rng rng(SplitMix64(options.seed + static_cast<uint64_t>(round)));
    GenerationServiceOptions opts;
    opts.num_workers = 1 + static_cast<int>(rng.Uniform(options.max_workers));
    opts.queue_capacity = 2 + rng.Uniform(14);
    opts.registry.capacity = 1 + rng.Uniform(4);
    opts.gen.train_epochs = options.train_epochs;
    opts.gen.trainer.batch_size = 4;
    opts.gen.attempts_factor = 4;
    opts.gen.seed = SplitMix64(options.seed ^ (round + 1));
    const bool midrun_shutdown = (round % 2) == 1;

    auto service = GenerationService::Create(&db, opts);
    if (!service.ok()) return service.status();
    if (options.verbose) {
      LSG_LOG(Info) << "service fuzz round " << round << ": workers="
                    << opts.num_workers << " queue=" << opts.queue_capacity
                    << " cache=" << opts.registry.capacity
                    << " midrun_shutdown=" << midrun_shutdown;
    }

    // Flood the service from a racing producer thread; requests mix
    // blocking Submit with fail-fast TrySubmit, batch and satisfy modes.
    std::vector<std::future<GenerationResponse>> futures;
    Mutex futures_mu;
    std::thread producer([&] {
      Rng prng(SplitMix64(options.seed + 1000 + round));
      for (int i = 0; i < options.requests_per_round; ++i) {
        GenerationRequest req;
        req.constraint = RandomConstraint(&prng);
        req.n = 1 + static_cast<int>(prng.Uniform(2));
        req.batch = prng.Bernoulli(0.75);
        req.id = static_cast<uint64_t>(i + 1);
        if (prng.Bernoulli(0.25)) {
          auto f = (*service)->TrySubmit(req);
          if (f.ok()) {
            MutexLock lock(&futures_mu);
            futures.push_back(std::move(*f));
          }
          // Backpressure / post-shutdown rejections are orderly outcomes.
        } else {
          MutexLock lock(&futures_mu);
          futures.push_back((*service)->Submit(req));
        }
      }
    });

    if (midrun_shutdown) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.Uniform(30)));
      (*service)->Shutdown();
    }
    producer.join();
    (*service)->Shutdown();
    (*service)->Shutdown();  // must be idempotent

    // Every accepted future must become ready with an orderly status.
    for (auto& f : futures) {
      if (f.wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        return Status::Internal(
            StrFormat("round %d: a submitted future never became ready",
                      round));
      }
      GenerationResponse r = f.get();
      if (!r.status.ok() &&
          r.status.code() != StatusCode::kFailedPrecondition) {
        return Status::Internal(
            StrFormat("round %d: request %llu finished with unexpected "
                      "status %s",
                      round, static_cast<unsigned long long>(r.id),
                      r.status.ToString().c_str()));
      }
    }

    ServiceMetricsSnapshot m = (*service)->Metrics();
    if (m.requests_completed + m.requests_failed + m.requests_rejected !=
        m.requests_submitted) {
      return Status::Internal(
          StrFormat("round %d: metrics leak: submitted=%llu completed=%llu "
                    "failed=%llu rejected=%llu",
                    round,
                    static_cast<unsigned long long>(m.requests_submitted),
                    static_cast<unsigned long long>(m.requests_completed),
                    static_cast<unsigned long long>(m.requests_failed),
                    static_cast<unsigned long long>(m.requests_rejected)));
    }
    if (m.queue_depth_high_water > opts.queue_capacity) {
      return Status::Internal(
          StrFormat("round %d: queue high water %llu exceeds capacity %zu",
                    round,
                    static_cast<unsigned long long>(m.queue_depth_high_water),
                    opts.queue_capacity));
    }
  }
  return Status::Ok();
}

}  // namespace lsg
