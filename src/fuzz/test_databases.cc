#include "fuzz/test_databases.h"

#include "common/logging.h"
#include "datasets/job_like.h"
#include "datasets/tpch_like.h"
#include "datasets/xuetang_like.h"

namespace lsg {

Database BuildScoreStudentDb() {
  Database db;
  {
    TableSchema s("Student");
    LSG_CHECK_OK(s.AddColumn({"ID", DataType::kInt64, true, false}));
    LSG_CHECK_OK(s.AddColumn({"Name", DataType::kString, false, false}));
    LSG_CHECK_OK(s.AddColumn({"Gender", DataType::kCategorical, false, false}));
    Table t(std::move(s));
    const char* names[] = {"Ada", "Bob", "Cat", "Dan", "Eve",
                           "Fay", "Gus", "Hal", "Ivy", "Joe"};
    for (int i = 0; i < 10; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}), Value(names[i]),
                                Value(i % 2 == 0 ? "F" : "M")}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  {
    TableSchema s("Score");
    LSG_CHECK_OK(s.AddColumn({"SID", DataType::kInt64, true, false}));
    LSG_CHECK_OK(s.AddColumn({"ID", DataType::kInt64, false, false}));
    LSG_CHECK_OK(s.AddColumn({"Course", DataType::kCategorical, false, false}));
    LSG_CHECK_OK(s.AddColumn({"Grade", DataType::kDouble, false, false}));
    Table t(std::move(s));
    // 30 rows: student i has 3 scores, grades 60 + (row % 41).
    const char* courses[] = {"math", "db", "ml"};
    for (int i = 0; i < 30; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}), Value(int64_t{i % 10}),
                                Value(courses[i % 3]),
                                Value(60.0 + (i * 7) % 41)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  LSG_CHECK_OK(db.AddForeignKey({"Score", "ID", "Student", "ID"}));
  return db;
}

const std::vector<std::string>& FuzzDatasetNames() {
  static const std::vector<std::string> kNames = {"score", "tpch", "job",
                                                  "xuetang"};
  return kNames;
}

StatusOr<Database> BuildNamedDatabase(const std::string& name, double scale) {
  DatasetScale s;
  s.factor = scale;
  if (name == "score") return BuildScoreStudentDb();
  if (name == "tpch" || name == "TPC-H") return BuildTpchLike(s);
  if (name == "job" || name == "JOB") return BuildJobLike(s);
  if (name == "xuetang" || name == "XueTang") return BuildXuetangLike(s);
  return Status::InvalidArgument("unknown dataset: " + name);
}

}  // namespace lsg
