#include "fuzz/shrinker.h"

#include <algorithm>

namespace lsg {

ShrinkResult ShrinkTrace(
    const std::vector<int>& actions,
    const std::function<bool(const std::vector<int>&)>& still_fails,
    int max_probes) {
  ShrinkResult result;
  result.actions = actions;

  size_t chunk = std::max<size_t>(1, result.actions.size() / 2);
  while (result.probes < max_probes) {
    bool any_removed = false;
    for (size_t start = 0; start < result.actions.size();) {
      if (result.probes >= max_probes) break;
      size_t len = std::min(chunk, result.actions.size() - start);
      std::vector<int> candidate;
      candidate.reserve(result.actions.size() - len);
      candidate.insert(candidate.end(), result.actions.begin(),
                       result.actions.begin() + start);
      candidate.insert(candidate.end(),
                       result.actions.begin() + start + len,
                       result.actions.end());
      ++result.probes;
      if (still_fails(candidate)) {
        result.removed += static_cast<int>(len);
        result.actions = std::move(candidate);
        any_removed = true;
        // Same start now addresses the next chunk; don't advance.
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!any_removed) break;  // 1-minimal: a full pass removed nothing
    } else {
      chunk = std::max<size_t>(1, chunk / 2);
    }
    if (result.actions.empty()) break;
  }
  return result;
}

}  // namespace lsg
