#ifndef LEARNEDSQLGEN_FUZZ_REFERENCE_EVAL_H_
#define LEARNEDSQLGEN_FUZZ_REFERENCE_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace lsg {

/// Naive reference evaluator used as the differential-testing oracle for
/// the optimized Executor (promoted from tests/differential_test.cc so the
/// fuzzer, benches, and tests share one copy). Deliberately mirrors the
/// engine's documented semantics (FK-edge join selection, NULL never
/// matches, uncorrelated subqueries, COUNT skips NULLs) with the simplest
/// possible code: row-at-a-time nested loops, no hashing.
///
/// Evaluation is metered: every inner-loop comparison consumes work, and
/// once `max_work` is exhausted the evaluation returns OutOfRange so the
/// fuzzer can skip pathologically expensive episodes instead of stalling.
class ReferenceEvaluator {
 public:
  /// `db` must outlive the evaluator.
  explicit ReferenceEvaluator(const Database* db,
                              uint64_t max_work = 1ull << 26)
      : db_(db), max_work_(max_work) {}

  struct Result {
    uint64_t cardinality = 0;
    std::vector<Value> first_column;
  };

  /// Evaluates a SELECT by nested loops.
  StatusOr<Result> EvalSelect(const SelectQuery& q) const;

  /// Result cardinality of any query type; for DML this is the predicted
  /// number of affected rows (INSERT VALUES = 1).
  StatusOr<uint64_t> EvalAst(const QueryAst& ast) const;

 private:
  struct Edge {
    size_t probe_chain_pos = 0;
    int probe_col = -1;
    int build_col = -1;
  };

  StatusOr<Result> EvalSelectRec(const SelectQuery& q) const;
  StatusOr<Edge> FindEdge(const std::vector<int>& tables, size_t i) const;
  Value TupleValue(const SelectQuery& q, const std::vector<uint32_t>& tup,
                   const ColumnRef& col) const;
  StatusOr<bool> EvalWhere(const SelectQuery& q, const WhereClause& where,
                           const std::vector<uint32_t>& tup) const;
  StatusOr<bool> EvalPredicate(const SelectQuery& q, const Predicate& p,
                               const std::vector<uint32_t>& tup) const;
  StatusOr<uint64_t> CountMatching(int table_idx,
                                   const WhereClause& where) const;
  Value Aggregate(const SelectQuery& q, const SelectItem& item,
                  const std::vector<std::vector<uint32_t>>& rows) const;
  static Value AggValues(AggFunc agg, const std::vector<Value>& values);
  Status Charge(uint64_t units) const;

  const Database* db_;
  uint64_t max_work_;
  mutable uint64_t work_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_REFERENCE_EVAL_H_
