#include "fuzz/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace lsg {

namespace {

/// Newlines inside free-text fields would corrupt the line-oriented corpus
/// format; flatten them (the fields are informational only).
std::string OneLine(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::string TraceToString(const EpisodeTrace& trace) {
  std::ostringstream out;
  out << "lsgfuzz-trace v1\n";
  out << "dataset " << trace.dataset << "\n";
  out << "profile " << trace.profile << "\n";
  out << "scale " << trace.scale << "\n";
  out << "values " << trace.values_per_column << "\n";
  out << "seed " << trace.seed << "\n";
  out << "episode " << trace.episode << "\n";
  if (!trace.oracle.empty()) out << "oracle " << OneLine(trace.oracle) << "\n";
  if (!trace.detail.empty()) out << "detail " << OneLine(trace.detail) << "\n";
  if (!trace.sql.empty()) out << "sql " << OneLine(trace.sql) << "\n";
  out << "actions";
  for (int a : trace.actions) out << ' ' << a;
  out << "\nend\n";
  return out.str();
}

StatusOr<EpisodeTrace> ParseTrace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "lsgfuzz-trace v1") {
    return Status::InvalidArgument("not an lsgfuzz-trace v1 file");
  }
  EpisodeTrace trace;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    size_t sp = line.find(' ');
    std::string key = line.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);
    if (key == "dataset") {
      trace.dataset = rest;
    } else if (key == "profile") {
      trace.profile = std::atoi(rest.c_str());
    } else if (key == "scale") {
      trace.scale = std::atof(rest.c_str());
    } else if (key == "values") {
      trace.values_per_column = std::atoi(rest.c_str());
    } else if (key == "seed") {
      trace.seed = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "episode") {
      trace.episode = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "oracle") {
      trace.oracle = rest;
    } else if (key == "detail") {
      trace.detail = rest;
    } else if (key == "sql") {
      trace.sql = rest;
    } else if (key == "actions") {
      std::istringstream as(rest);
      int a;
      while (as >> a) trace.actions.push_back(a);
    } else {
      // Unknown keys are skipped so the format can grow.
    }
  }
  if (!saw_end) return Status::InvalidArgument("truncated trace (no 'end')");
  if (trace.dataset.empty()) {
    return Status::InvalidArgument("trace is missing its dataset");
  }
  return trace;
}

Status SaveTrace(const EpisodeTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot write trace file " + path);
  out << TraceToString(trace);
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<EpisodeTrace> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read trace file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseTrace(ss.str());
}

StatusOr<QueryAst> RecordedRandomWalk(GenerationFsm* fsm, Rng* rng,
                                      std::vector<int>* actions) {
  actions->clear();
  fsm->Reset();
  const int kMaxSteps = 512;
  for (int step = 0; step < kMaxSteps; ++step) {
    const std::vector<uint8_t>& mask = fsm->ValidActions();
    // Reservoir-pick a uniform valid action (same scheme as
    // RandomWalkQuery, so identical Rng streams yield identical queries).
    int chosen = -1;
    int seen = 0;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      ++seen;
      if (rng->Uniform(seen) == 0) chosen = static_cast<int>(i);
    }
    if (chosen < 0) {
      return Status::Internal("FSM produced an empty action mask");
    }
    LSG_RETURN_IF_ERROR(fsm->Step(chosen));
    actions->push_back(chosen);
    if (fsm->done()) return fsm->TakeAst();
  }
  return Status::Internal("random walk exceeded the step cap");
}

StatusOr<QueryAst> ReplayActions(GenerationFsm* fsm,
                                 const std::vector<int>& actions,
                                 bool* exact) {
  fsm->Reset();
  bool repaired = false;
  const int kMaxSteps = 512;
  int steps = 0;
  for (int a : actions) {
    if (fsm->done()) {
      repaired = true;  // trailing actions past EOF are dropped
      break;
    }
    const std::vector<uint8_t>& mask = fsm->ValidActions();
    if (a < 0 || static_cast<size_t>(a) >= mask.size() || !mask[a]) {
      repaired = true;  // FSM-legality repair: skip the illegal action
      continue;
    }
    LSG_RETURN_IF_ERROR(fsm->Step(a));
    if (++steps > kMaxSteps) {
      return Status::Internal("replay exceeded the step cap");
    }
  }
  // Deterministic completion: always take the lowest valid action id. The
  // FSM's token-budget masking guarantees this terminates.
  while (!fsm->done()) {
    repaired = true;
    const std::vector<uint8_t>& mask = fsm->ValidActions();
    int chosen = -1;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    if (chosen < 0) {
      return Status::Internal("FSM produced an empty action mask");
    }
    LSG_RETURN_IF_ERROR(fsm->Step(chosen));
    if (++steps > kMaxSteps) {
      return Status::Internal("replay completion exceeded the step cap");
    }
  }
  if (exact != nullptr) *exact = !repaired;
  return fsm->TakeAst();
}

}  // namespace lsg
