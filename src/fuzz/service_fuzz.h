#ifndef LEARNEDSQLGEN_FUZZ_SERVICE_FUZZ_H_
#define LEARNEDSQLGEN_FUZZ_SERVICE_FUZZ_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace lsg {

struct ServiceFuzzOptions {
  std::string dataset = "score";
  double scale = 0.05;
  int rounds = 4;             ///< independent service lifecycles
  int requests_per_round = 16;
  uint64_t seed = 7;
  int train_epochs = 2;       ///< tiny on purpose; we hunt races, not quality
  int max_workers = 4;
  bool verbose = false;
};

/// Randomized stress of the concurrent GenerationService: every round
/// creates a service with a random worker count, queue capacity, and
/// registry size, floods it with a random constraint mix (point/range,
/// cardinality/cost, Submit and TrySubmit), and on odd rounds shuts the
/// service down mid-run from a racing thread. Invariants checked:
///   - every submitted future becomes ready (no hangs, no lost promises)
///   - per-request statuses are OK or an orderly rejection
///   - metrics stay consistent (completed + failed + rejected == submitted,
///     queue high-water within capacity)
///   - Shutdown is idempotent
/// Run it under `LSG_SANITIZE=thread` to turn data races into failures.
/// Returns Internal with a description on any violation.
Status FuzzGenerationService(const ServiceFuzzOptions& options);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_SERVICE_FUZZ_H_
