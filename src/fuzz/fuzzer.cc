#include "fuzz/fuzzer.h"

#include <filesystem>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "fsm/compiled_fsm.h"
#include "fuzz/shrinker.h"
#include "fuzz/test_databases.h"
#include "sql/render.h"

namespace lsg {

const std::vector<FuzzProfile>& FuzzProfiles() {
  static const std::vector<FuzzProfile>* kProfiles = [] {
    auto* profiles = new std::vector<FuzzProfile>;
    profiles->push_back({"default", QueryProfile()});
    profiles->push_back({"full", QueryProfile::Full()});
    {
      QueryProfile p;
      p.max_nesting_depth = 2;
      profiles->push_back({"nested", p});
    }
    {
      QueryProfile p;
      p.max_predicates = 6;
      p.max_select_items = 4;
      profiles->push_back({"wide", p});
    }
    {
      QueryProfile p;
      p.allow_select = false;
      p.allow_insert = true;
      p.allow_update = true;
      p.allow_delete = true;
      profiles->push_back({"dml", p});
    }
    // Appended (trace files index this list): the select-project-join
    // restriction — the one SELECT shape whose state graph stays small
    // enough for the compiled-FSM oracle on every dataset.
    profiles->push_back({"spj", QueryProfile::SpjOnly()});
    return profiles;
  }();
  return *kProfiles;
}

std::string FuzzRunStats::ToString() const {
  return StrFormat(
      "episodes=%llu skipped=%llu failures=%zu shrink_probes=%d "
      "compiled_tables=%d compiled_skipped=%d",
      static_cast<unsigned long long>(episodes),
      static_cast<unsigned long long>(skipped), failures.size(),
      shrink_probes, compiled_tables, compiled_skipped);
}

namespace {

/// Per-episode seed: decorrelates datasets and episodes from one base seed
/// while staying a pure function of (base, dataset index, episode).
uint64_t EpisodeSeed(uint64_t base, size_t dataset_index, uint64_t episode) {
  return SplitMix64(SplitMix64(base + dataset_index * 0x9E3779B9ull) +
                    episode);
}

std::string ArtifactPath(const std::string& dir, const EpisodeTrace& t) {
  return (std::filesystem::path(dir) /
          StrFormat("%s-ep%llu-%s.trace", t.dataset.c_str(),
                    static_cast<unsigned long long>(t.episode),
                    t.oracle.c_str()))
      .string();
}

}  // namespace

StatusOr<FuzzRunStats> RunFuzz(const FuzzOptions& options) {
  const std::vector<FuzzProfile>& profiles = FuzzProfiles();
  if (!options.inject_fsm_bug.empty() &&
      options.inject_fsm_bug != "mask-bit" &&
      options.inject_fsm_bug != "transition-swap") {
    return Status::InvalidArgument("unknown inject_fsm_bug \"" +
                                   options.inject_fsm_bug +
                                   "\" (want mask-bit|transition-swap)");
  }
  std::vector<std::string> datasets = options.datasets;
  if (datasets.empty()) datasets = FuzzDatasetNames();
  if (!options.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.corpus_dir, ec);
    if (ec) {
      return Status::NotFound("cannot create corpus dir " +
                              options.corpus_dir);
    }
  }

  FuzzRunStats stats;
  for (size_t di = 0; di < datasets.size(); ++di) {
    const std::string& dataset = datasets[di];
    LSG_ASSIGN_OR_RETURN(Database db,
                         BuildNamedDatabase(dataset, options.scale));
    VocabularyOptions vo;
    vo.values_per_column = options.values_per_column;
    auto vocab = Vocabulary::Build(db, vo);
    if (!vocab.ok()) return vocab.status();
    DifferentialOracle oracle(&db, options.oracle);

    // Lazily fetch one compiled FSM table per profile for the compiled-fsm
    // oracle, via the process-wide cache: a pair past the compile caps is
    // probed once per process (negative entry), not once per RunFuzz call,
    // and its episodes simply skip the seventh oracle. Fault injection
    // corrupts a private copy — the shared cached table stays pristine.
    std::vector<std::shared_ptr<const CompiledFsmTable>> shared_tables(
        profiles.size());
    std::vector<std::unique_ptr<CompiledFsmTable>> corrupt_tables(
        profiles.size());
    std::vector<bool> table_probed(profiles.size(), false);
    auto compiled_table_for = [&](int pi) -> const CompiledFsmTable* {
      if (!options.oracle.check_compiled_fsm) return nullptr;
      if (!table_probed[pi]) {
        table_probed[pi] = true;
        CompileFsmOptions co;
        co.max_states = options.compiled_max_states;
        co.max_millis = options.compiled_max_millis;
        shared_tables[pi] = CompiledFsmCache::Global().GetOrCompile(
            db, *vocab, profiles[pi].profile, co, /*cache_dir=*/"");
        if (shared_tables[pi] == nullptr) {
          ++stats.compiled_skipped;
        } else {
          ++stats.compiled_tables;
          if (options.inject_fsm_bug == "mask-bit" ||
              options.inject_fsm_bug == "transition-swap") {
            corrupt_tables[pi] =
                std::make_unique<CompiledFsmTable>(*shared_tables[pi]);
            if (options.inject_fsm_bug == "mask-bit") {
              corrupt_tables[pi]->CorruptMaskBit(options.seed);
            } else {
              corrupt_tables[pi]->CorruptTransitionSwap(options.seed);
            }
          }
        }
      }
      return corrupt_tables[pi] != nullptr ? corrupt_tables[pi].get()
                                           : shared_tables[pi].get();
    };

    int dataset_failures = 0;
    for (int ep = 0; ep < options.episodes; ++ep) {
      if (dataset_failures >= options.max_failures) break;
      const int pi = ep % static_cast<int>(profiles.size());
      GenerationFsm fsm(&db, &*vocab, profiles[pi].profile);
      const uint64_t ep_seed = EpisodeSeed(options.seed, di, ep);
      Rng rng(ep_seed);
      std::vector<int> actions;
      auto ast = RecordedRandomWalk(&fsm, &rng, &actions);
      ++stats.episodes;

      EpisodeTrace trace;
      trace.dataset = dataset;
      trace.profile = pi;
      trace.scale = options.scale;
      trace.values_per_column = options.values_per_column;
      trace.seed = ep_seed;
      trace.episode = static_cast<uint64_t>(ep);
      trace.actions = actions;

      if (!ast.ok()) {
        // The FSM soundness invariant itself broke; not replayable through
        // the oracle, but still record the artifact.
        trace.oracle = "fsm-walk";
        trace.detail = ast.status().ToString();
      } else {
        const uint64_t skipped_before = oracle.skipped();
        auto violation = oracle.Check(*ast);
        stats.skipped += oracle.skipped() - skipped_before;
        if (!violation.has_value()) {
          // Sixth oracle: incremental prefix estimates must reproduce the
          // full walk at every executable prefix of the episode.
          violation = oracle.CheckPrefixEstimates(
              &*vocab, profiles[pi].profile, actions);
        }
        if (!violation.has_value()) {
          // Seventh oracle: the compiled mask/transition table must agree
          // with the interpreted FSM token-by-token over this episode.
          violation = oracle.CheckCompiledFsm(
              &*vocab, profiles[pi].profile, compiled_table_for(pi), actions);
        }
        if (!violation.has_value() && ep % 8 == 0) {
          // Eighth oracle (sampled — it decodes whole episode groups, not
          // this episode's actions): the batched cross-request decoder must
          // reproduce the scalar decode path byte-for-byte under a random
          // policy seeded from this episode.
          violation = oracle.CheckBatchDecode(&*vocab, profiles[pi].profile,
                                              ep_seed);
        }
        if (!violation.has_value()) continue;
        trace.oracle = violation->oracle;
        trace.detail = violation->detail;
        trace.sql = RenderSql(*ast, db.catalog());
        if (options.shrink) {
          const std::string want = violation->oracle;
          auto still_fails = [&](const std::vector<int>& candidate) {
            GenerationFsm replay_fsm(&db, &*vocab, profiles[pi].profile);
            auto replayed = ReplayActions(&replay_fsm, candidate, nullptr);
            if (!replayed.ok()) return false;
            auto v = oracle.Check(*replayed);
            if (!v.has_value()) {
              v = oracle.CheckPrefixEstimates(&*vocab, profiles[pi].profile,
                                              candidate);
            }
            if (!v.has_value()) {
              v = oracle.CheckCompiledFsm(&*vocab, profiles[pi].profile,
                                          compiled_table_for(pi), candidate);
            }
            return v.has_value() && v->oracle == want;
          };
          ShrinkResult shrunk = ShrinkTrace(actions, still_fails);
          stats.shrink_probes += shrunk.probes;
          // Re-derive sql/detail from the minimized trace so the artifact
          // describes exactly what --replay will reproduce.
          GenerationFsm final_fsm(&db, &*vocab, profiles[pi].profile);
          auto minimized = ReplayActions(&final_fsm, shrunk.actions, nullptr);
          if (minimized.ok()) {
            auto v = oracle.Check(*minimized);
            if (!v.has_value()) {
              v = oracle.CheckPrefixEstimates(&*vocab, profiles[pi].profile,
                                              shrunk.actions);
            }
            if (!v.has_value()) {
              v = oracle.CheckCompiledFsm(&*vocab, profiles[pi].profile,
                                          compiled_table_for(pi),
                                          shrunk.actions);
            }
            if (v.has_value() && v->oracle == want) {
              trace.actions = shrunk.actions;
              trace.detail = v->detail;
              trace.sql = RenderSql(*minimized, db.catalog());
            }
          }
        }
      }

      ++dataset_failures;
      if (options.verbose) {
        LSG_LOG(Error) << "fuzz failure [" << trace.oracle << "] " << dataset
                       << " ep=" << ep << " " << trace.detail;
      }
      if (!options.corpus_dir.empty()) {
        LSG_RETURN_IF_ERROR(
            SaveTrace(trace, ArtifactPath(options.corpus_dir, trace)));
      }
      stats.failures.push_back(std::move(trace));
    }
  }
  return stats;
}

StatusOr<EpisodeTrace> ReplayTraceEpisode(const EpisodeTrace& trace,
                                          const OracleOptions& oracle_opts) {
  const std::vector<FuzzProfile>& profiles = FuzzProfiles();
  if (trace.profile < 0 ||
      trace.profile >= static_cast<int>(profiles.size())) {
    return Status::InvalidArgument(
        StrFormat("trace profile %d out of range", trace.profile));
  }
  LSG_ASSIGN_OR_RETURN(Database db,
                       BuildNamedDatabase(trace.dataset, trace.scale));
  VocabularyOptions vo;
  vo.values_per_column = trace.values_per_column;
  auto vocab = Vocabulary::Build(db, vo);
  if (!vocab.ok()) return vocab.status();

  GenerationFsm fsm(&db, &*vocab, profiles[trace.profile].profile);
  LSG_ASSIGN_OR_RETURN(QueryAst ast,
                       ReplayActions(&fsm, trace.actions, nullptr));

  DifferentialOracle oracle(&db, oracle_opts);
  EpisodeTrace result = trace;
  result.sql = RenderSql(ast, db.catalog());
  auto violation = oracle.Check(ast);
  if (!violation.has_value()) {
    violation = oracle.CheckPrefixEstimates(
        &*vocab, profiles[trace.profile].profile, trace.actions);
  }
  if (!violation.has_value() && oracle_opts.check_compiled_fsm) {
    // Re-derive the table for the replay (cached process-wide) so
    // compiled-fsm failures caught live reproduce deterministically from
    // the artifact alone.
    CompileFsmOptions co;
    co.max_states = FuzzOptions().compiled_max_states;
    co.max_millis = FuzzOptions().compiled_max_millis;
    std::shared_ptr<const CompiledFsmTable> table =
        CompiledFsmCache::Global().GetOrCompile(
            db, *vocab, profiles[trace.profile].profile, co,
            /*cache_dir=*/"");
    if (table != nullptr) {
      violation = oracle.CheckCompiledFsm(&*vocab,
                                          profiles[trace.profile].profile,
                                          table.get(), trace.actions);
    }
  }
  if (!violation.has_value()) {
    // Batch-decode failures replay from the trace's seed (the oracle
    // decodes its own episode group, not the recorded actions).
    violation = oracle.CheckBatchDecode(
        &*vocab, profiles[trace.profile].profile, trace.seed);
  }
  if (violation.has_value()) {
    result.oracle = violation->oracle;
    result.detail = violation->detail;
  } else {
    result.oracle.clear();
    result.detail.clear();
  }
  return result;
}

}  // namespace lsg
