#ifndef LEARNEDSQLGEN_FUZZ_FUZZER_H_
#define LEARNEDSQLGEN_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/generation_fsm.h"
#include "fuzz/oracle.h"
#include "fuzz/trace.h"

namespace lsg {

/// One named FSM policy the fuzzer rotates through, so every grammar
/// branch — joins, nesting, aggregates, and all DML statement classes —
/// gets coverage.
struct FuzzProfile {
  std::string name;
  QueryProfile profile;
};

/// The fixed profile rotation: "default", "full" (everything incl. DML),
/// "nested" (depth 2), "wide" (more predicates/items), "dml" (DML only),
/// "spj" (select-project-join only). Trace files reference profiles by
/// index into this list, so new profiles are only ever appended.
const std::vector<FuzzProfile>& FuzzProfiles();

struct FuzzOptions {
  /// Datasets to fuzz; empty means every bundled one (FuzzDatasetNames()).
  std::vector<std::string> datasets;
  int episodes = 1000;  ///< episodes per dataset
  uint64_t seed = 7;
  /// Scale factor for the synthetic benchmarks. Small by default: the
  /// reference evaluator is deliberately quadratic, so fuzzing wants many
  /// small episodes over few large ones.
  double scale = 0.05;
  int values_per_column = 8;  ///< vocabulary sampling width
  std::string corpus_dir;     ///< failure artifacts written here if set
  bool shrink = true;         ///< delta-debug failing traces
  int max_failures = 16;      ///< stop a dataset after this many failures
  bool verbose = false;       ///< progress + failure logging via LSG_LOG
  OracleOptions oracle;

  /// Fault injection for the compiled-FSM oracle: "mask-bit" flips a legal
  /// token off in a compiled mask, "transition-swap" crosses two compiled
  /// edges. The run must then report compiled-fsm violations — proof the
  /// differential harness actually detects table corruption.
  std::string inject_fsm_bug;

  /// Compile caps for the per-(dataset, profile) oracle tables. Pairs past
  /// the caps are skipped (the compiled oracle has nothing to check there);
  /// the small bundled datasets all fit.
  int compiled_max_states = 120000;
  int compiled_max_millis = 5000;
};

struct FuzzRunStats {
  uint64_t episodes = 0;  ///< episodes generated and checked
  uint64_t skipped = 0;   ///< episodes with a skipped check (work bounds)
  int shrink_probes = 0;  ///< candidate traces evaluated while shrinking
  int compiled_tables = 0;   ///< (dataset, profile) pairs compiled
  int compiled_skipped = 0;  ///< pairs past the compile caps (not checked)
  /// Every failure, already shrunk when shrinking is on (and saved under
  /// corpus_dir when set).
  std::vector<EpisodeTrace> failures;

  std::string ToString() const;
};

/// Runs the fuzzing loop: for every dataset, drives `episodes` randomized
/// FSM walks through the full oracle stack, capturing, shrinking, and
/// serializing every failure as a replayable corpus artifact.
StatusOr<FuzzRunStats> RunFuzz(const FuzzOptions& options);

/// Replays one corpus artifact deterministically: rebuilds the database,
/// vocabulary, and FSM from the trace header, replays the action trace,
/// and re-runs the oracle stack. Returns the input trace with its oracle/
/// detail/sql fields overwritten by the re-run (oracle empty = clean).
StatusOr<EpisodeTrace> ReplayTraceEpisode(
    const EpisodeTrace& trace, const OracleOptions& oracle = OracleOptions());

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_FUZZER_H_
