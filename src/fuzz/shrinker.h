#ifndef LEARNEDSQLGEN_FUZZ_SHRINKER_H_
#define LEARNEDSQLGEN_FUZZ_SHRINKER_H_

#include <functional>
#include <vector>

namespace lsg {

/// Outcome of minimizing a failing action trace.
struct ShrinkResult {
  std::vector<int> actions;  ///< minimized trace (still failing)
  int probes = 0;            ///< candidate traces evaluated
  int removed = 0;           ///< actions removed from the original
};

/// Delta-debugging over action traces (ddmin-style greedy chunk removal):
/// repeatedly tries to delete contiguous chunks — halving the chunk size
/// down to single actions — keeping any deletion after which `still_fails`
/// still returns true. The predicate is expected to replay the candidate
/// through the FSM with legality repair (see ReplayActions), so *every*
/// subsequence is a meaningful candidate. Runs until a full pass at chunk
/// size 1 removes nothing, i.e. the result is 1-minimal, or `max_probes`
/// candidates have been evaluated.
ShrinkResult ShrinkTrace(
    const std::vector<int>& actions,
    const std::function<bool(const std::vector<int>&)>& still_fails,
    int max_probes = 2000);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_SHRINKER_H_
