#ifndef LEARNEDSQLGEN_FUZZ_ORACLE_H_
#define LEARNEDSQLGEN_FUZZ_ORACLE_H_

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "analysis/sql_linter.h"
#include "exec/dml_executor.h"
#include "exec/executor.h"
#include "fsm/generation_fsm.h"
#include "fuzz/reference_eval.h"
#include "optimizer/cardinality_estimator.h"
#include "optimizer/column_stats.h"
#include "optimizer/cost_model.h"
#include "optimizer/feedback_cache.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "vexec/vectorized_engine.h"

namespace lsg {

/// Tuning and fault-injection knobs for the oracle stack.
struct OracleOptions {
  bool check_lint = true;       ///< AST-level semantic lint (SqlLinter)
  bool check_reference = true;  ///< optimized executor vs. naive evaluator
  bool check_roundtrip = true;  ///< render → parse → render fixpoint + re-exec
  bool check_estimator = true;  ///< estimator finite / non-negative / bounded
  bool check_dml_apply = true;  ///< DML apply-for-real under snapshot/rollback
  bool check_prefix_estimates = true;  ///< incremental == full, token-by-token
  bool check_compiled_fsm = true;      ///< compiled FSM == interpreted FSM
  /// Lockstep vectorized engine: vexec cardinality must equal the reference
  /// executor's bitwise, and UPDATE/DELETE row-match vectors elementwise.
  bool check_vexec = true;
  /// Batched decode vs scalar decode: the cross-request BatchDecoder must
  /// reproduce the sequential NextDistribution/MatVec path byte-for-byte.
  bool check_batch_decode = true;

  /// Work budget per reference evaluation; exceeding it skips the check
  /// (counted in skipped()) instead of stalling the fuzzer.
  uint64_t max_reference_work = 1ull << 26;

  /// Slack multiplier on the estimator's cross-product upper bound.
  double estimator_slack = 1.5;

  // --- fault injection, used to mutation-test the harness itself ---

  /// Adds this offset to every executor cardinality that has a non-empty
  /// WHERE (a synthetic executor bug the reference oracle must catch).
  int64_t inject_card_offset = 0;

  /// Doubles the first space of the rendered SQL (a synthetic renderer bug
  /// the fixpoint oracle must catch).
  bool inject_render_space = false;

  /// Plants a defect in the oracle's vectorized engine (hash-collision /
  /// sel-vector-off-by-one) that the vexec lockstep check must catch.
  vexec::InjectBug inject_vexec_bug = vexec::InjectBug::kNone;
};

/// One oracle violation: which oracle fired and why.
struct OracleViolation {
  std::string oracle;  ///< "exec-vs-ref", "render-fixpoint", ...
  std::string detail;
};

/// The full correctness gate for one generated query, run in order:
///   0. lint             — the AST satisfies every SqlLinter semantic rule
///                         (independent re-derivation of the FSM's masks)
///   1. executor-error   — optimized executor must accept every FSM query
///   2. exec-vs-ref      — cardinality equals the naive reference evaluator
///   2b. vexec           — the vectorized engine reproduces the reference
///                         executor's cardinality bitwise (and, for
///                         UPDATE/DELETE, its per-row match vector)
///   3. reparse-error / render-fixpoint / reparse-exec
///                       — Render(Parse(Render(q))) == Render(q) byte-for-
///                         byte and the reparsed AST executes identically
///   4. estimator-bounds — estimate is finite, non-negative, and at most
///                         slack × the join cross product
///   5. dml-apply / dml-rollback
///                       — DML applied for real affects exactly the
///                         predicted rows; the snapshot restore leaves the
///                         database byte-identical
///
/// `db` is mutated only inside check 5 and always restored before Check()
/// returns, so episodes are independent.
class DifferentialOracle {
 public:
  DifferentialOracle(Database* db, OracleOptions options = OracleOptions());

  /// Runs every enabled oracle; nullopt means the query passed them all.
  std::optional<OracleViolation> Check(const QueryAst& ast);

  /// Sixth oracle (prefix-estimate): replays `actions` through a fresh FSM
  /// over the oracle's database and asserts at every executable prefix of
  /// a SELECT that the incremental PrefixEstimator reproduces the full
  /// EstimateSelect / SelectCost walk bitwise — the invariant the
  /// environment's O(1) feedback path depends on.
  std::optional<OracleViolation> CheckPrefixEstimates(
      const Vocabulary* vocab, const QueryProfile& profile,
      const std::vector<int>& actions);

  /// Seventh oracle (compiled-fsm): replays `actions` through an
  /// interpreted and a compiled FSM in lockstep and asserts before every
  /// step — and once more at the end — byte-identical masks, identical
  /// mask widths / last_mask_width(), identical done() flags, that the
  /// compiled walk never leaves its table, and that a finished episode
  /// lands exactly on the table's accept state. This is the permanent
  /// guard that keeps the interpreted FSM authoritative over the
  /// table-driven fast path.
  std::optional<OracleViolation> CheckCompiledFsm(
      const Vocabulary* vocab, const QueryProfile& profile,
      const CompiledFsmTable* table, const std::vector<int>& actions);

  /// Eighth oracle (batch-decode): builds a small randomly-initialized
  /// policy over the oracle's database (seeded from `seed`, so batching
  /// must hold for arbitrary weights, not just trained ones) and decodes a
  /// group of episodes twice — once through the ragged cross-request
  /// BatchDecoder (batched GEMM forward) and once through the scalar
  /// NextDistribution / MatVec loop with the same per-item RNG streams —
  /// asserting attempt counts, rendered SQL, metrics and satisfied flags
  /// are byte-identical. This is the serving path's standing guarantee:
  /// batching changes wall-clock only, never samples.
  std::optional<OracleViolation> CheckBatchDecode(const Vocabulary* vocab,
                                                 const QueryProfile& profile,
                                                 uint64_t seed);

  uint64_t checked() const { return checked_; }
  /// Episodes where some check was skipped (join blowup / work budget).
  uint64_t skipped() const { return skipped_; }

 private:
  std::optional<OracleViolation> CheckDmlApply(const QueryAst& ast,
                                               uint64_t predicted);

  Database* db_;
  OracleOptions options_;
  DatabaseStats stats_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;
  Executor exec_;
  DmlExecutor dml_;
  ReferenceEvaluator reference_;
  vexec::VectorizedEngine vexec_;
  SqlLinter linter_;
  uint64_t checked_ = 0;
  uint64_t skipped_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_ORACLE_H_
