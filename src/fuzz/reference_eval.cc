#include "fuzz/reference_eval.h"

#include <map>
#include <optional>
#include <string>

#include "exec/expression.h"

namespace lsg {

Status ReferenceEvaluator::Charge(uint64_t units) const {
  // Saturate instead of wrapping: a wrapped meter would silently re-arm
  // the budget on pathological row-count products.
  uint64_t next = 0;
  if (__builtin_add_overflow(work_, units, &next)) next = UINT64_MAX;
  work_ = next;
  if (work_ > max_work_) {
    return Status::OutOfRange("reference evaluation exceeded its work budget");
  }
  return Status::Ok();
}

StatusOr<ReferenceEvaluator::Result> ReferenceEvaluator::EvalSelect(
    const SelectQuery& q) const {
  work_ = 0;
  return EvalSelectRec(q);
}

StatusOr<ReferenceEvaluator::Result> ReferenceEvaluator::EvalSelectRec(
    const SelectQuery& q) const {
  // 1. Materialize the joined rows by nested loops. The base scan is
  // charged before materializing so a 10⁶-row scaled table trips the
  // meter instead of allocating first.
  std::vector<std::vector<uint32_t>> tuples;  // row per table in chain
  LSG_RETURN_IF_ERROR(Charge(db_->tables()[q.tables[0]].num_rows()));
  for (size_t r = 0; r < db_->tables()[q.tables[0]].num_rows(); ++r) {
    tuples.push_back({static_cast<uint32_t>(r)});
  }
  for (size_t i = 1; i < q.tables.size(); ++i) {
    LSG_ASSIGN_OR_RETURN(Edge edge, FindEdge(q.tables, i));
    std::vector<std::vector<uint32_t>> next;
    const Table& nt = db_->tables()[q.tables[i]];
    // The nested-loop product is the probe-equivalent work of this stage
    // (what the Executor meters as rows_probed · build size). Saturate the
    // multiply: two ~2³² row counts would wrap uint64 and skip the budget.
    uint64_t probe_work = 0;
    if (__builtin_mul_overflow(static_cast<uint64_t>(tuples.size()),
                               static_cast<uint64_t>(nt.num_rows()),
                               &probe_work)) {
      probe_work = UINT64_MAX;
    }
    LSG_RETURN_IF_ERROR(Charge(probe_work));
    for (const auto& tup : tuples) {
      for (size_t r = 0; r < nt.num_rows(); ++r) {
        Value a = db_->tables()[q.tables[edge.probe_chain_pos]].GetValue(
            tup[edge.probe_chain_pos], edge.probe_col);
        Value b = nt.GetValue(r, edge.build_col);
        if (!a.is_null() && !b.is_null() && a.Compare(b) == 0) {
          auto extended = tup;
          extended.push_back(static_cast<uint32_t>(r));
          next.push_back(std::move(extended));
        }
      }
    }
    tuples = std::move(next);
  }

  // 2. WHERE.
  std::vector<std::vector<uint32_t>> kept;
  for (const auto& tup : tuples) {
    LSG_ASSIGN_OR_RETURN(bool pass, EvalWhere(q, q.where, tup));
    if (pass) kept.push_back(tup);
  }

  // 3. Aggregation (each kept tuple is touched once more to aggregate or
  // group it).
  LSG_RETURN_IF_ERROR(Charge(kept.size()));
  Result out;
  if (q.group_by.empty()) {
    if (q.HasAggregate()) {
      out.cardinality = 1;
      out.first_column.push_back(Aggregate(q, q.items[0], kept));
    } else {
      out.cardinality = kept.size();
      for (const auto& tup : kept) {
        out.first_column.push_back(TupleValue(q, tup, q.items[0].column));
      }
    }
    return out;
  }
  std::map<std::string, std::vector<std::vector<uint32_t>>> groups;
  for (const auto& tup : kept) {
    std::string key;
    for (const ColumnRef& c : q.group_by) {
      key += TupleValue(q, tup, c).ToSqlLiteral();
      key += '\x1f';
    }
    groups[key].push_back(tup);
  }
  for (const auto& [key, rows] : groups) {
    (void)key;
    if (q.having.has_value()) {
      std::vector<Value> col;
      for (const auto& tup : rows) {
        col.push_back(TupleValue(q, tup, q.having->column));
      }
      Value agg = AggValues(q.having->agg, col);
      if (!CompareValues(agg, q.having->op, q.having->value)) continue;
    }
    ++out.cardinality;
    const SelectItem& item = q.items[0];
    if (item.agg == AggFunc::kNone) {
      out.first_column.push_back(TupleValue(q, rows[0], item.column));
    } else {
      std::vector<Value> col;
      for (const auto& tup : rows) {
        col.push_back(TupleValue(q, tup, item.column));
      }
      out.first_column.push_back(AggValues(item.agg, col));
    }
  }
  return out;
}

StatusOr<uint64_t> ReferenceEvaluator::EvalAst(const QueryAst& ast) const {
  work_ = 0;
  switch (ast.type) {
    case QueryType::kSelect: {
      LSG_ASSIGN_OR_RETURN(Result r, EvalSelectRec(*ast.select));
      return r.cardinality;
    }
    case QueryType::kInsert:
      if (ast.insert->source != nullptr) {
        LSG_ASSIGN_OR_RETURN(Result r, EvalSelectRec(*ast.insert->source));
        return r.cardinality;
      }
      return static_cast<uint64_t>(1);
    case QueryType::kUpdate:
      return CountMatching(ast.update->table_idx, ast.update->where);
    case QueryType::kDelete:
      return CountMatching(ast.del->table_idx, ast.del->where);
  }
  return Status::InvalidArgument("unknown query type");
}

StatusOr<ReferenceEvaluator::Edge> ReferenceEvaluator::FindEdge(
    const std::vector<int>& tables, size_t i) const {
  const Catalog& cat = db_->catalog();
  for (size_t j = 0; j < i; ++j) {
    auto edges = cat.JoinEdges(cat.table(tables[j]).name(),
                               cat.table(tables[i]).name());
    if (edges.empty()) continue;
    const ForeignKey& fk = edges[0];
    Edge e;
    e.probe_chain_pos = j;
    const bool new_is_from = fk.from_table == cat.table(tables[i]).name();
    e.probe_col = cat.table(tables[j]).FindColumn(
        new_is_from ? fk.to_column : fk.from_column);
    e.build_col = cat.table(tables[i]).FindColumn(
        new_is_from ? fk.from_column : fk.to_column);
    return e;
  }
  return Status::Internal("no FK edge for join");
}

Value ReferenceEvaluator::TupleValue(const SelectQuery& q,
                                     const std::vector<uint32_t>& tup,
                                     const ColumnRef& col) const {
  for (size_t i = 0; i < q.tables.size(); ++i) {
    if (q.tables[i] == col.table_idx) {
      return db_->tables()[col.table_idx].GetValue(tup[i], col.column_idx);
    }
  }
  return Value::Null();
}

StatusOr<bool> ReferenceEvaluator::EvalWhere(
    const SelectQuery& q, const WhereClause& where,
    const std::vector<uint32_t>& tup) const {
  // Even an empty WHERE costs one unit per tuple: CountMatching over a
  // scaled 10⁶-row table must consume budget whether or not predicates
  // exist, matching the Executor's per-row scan accounting.
  LSG_RETURN_IF_ERROR(Charge(1 + where.predicates.size()));
  if (where.empty()) return true;
  std::vector<bool> preds;
  for (const Predicate& p : where.predicates) {
    LSG_ASSIGN_OR_RETURN(bool v, EvalPredicate(q, p, tup));
    preds.push_back(v);
  }
  return CombinePredicates(preds, where.connectors);
}

StatusOr<bool> ReferenceEvaluator::EvalPredicate(
    const SelectQuery& q, const Predicate& p,
    const std::vector<uint32_t>& tup) const {
  switch (p.kind) {
    case PredicateKind::kValue:
      return CompareValues(TupleValue(q, tup, p.column), p.op, p.value);
    case PredicateKind::kLike: {
      Value v = TupleValue(q, tup, p.column);
      return v.is_string() && p.value.is_string() &&
             LikeMatch(v.as_string(), p.value.as_string());
    }
    case PredicateKind::kScalarSub: {
      LSG_ASSIGN_OR_RETURN(Result sub, EvalSelectRec(*p.subquery));
      if (sub.cardinality != 1 || sub.first_column.empty()) return false;
      return CompareValues(TupleValue(q, tup, p.column), p.op,
                           sub.first_column[0]);
    }
    case PredicateKind::kInSub: {
      Value v = TupleValue(q, tup, p.column);
      if (v.is_null()) return false;
      LSG_ASSIGN_OR_RETURN(Result sub, EvalSelectRec(*p.subquery));
      for (const Value& m : sub.first_column) {
        if (!m.is_null() && m.Compare(v) == 0) return true;
      }
      return false;
    }
    case PredicateKind::kExistsSub: {
      LSG_ASSIGN_OR_RETURN(Result sub, EvalSelectRec(*p.subquery));
      bool exists = sub.cardinality > 0;
      return p.negated ? !exists : exists;
    }
  }
  return false;
}

StatusOr<uint64_t> ReferenceEvaluator::CountMatching(
    int table_idx, const WhereClause& where) const {
  SelectQuery probe;
  probe.tables = {table_idx};
  uint64_t n = 0;
  const Table& t = db_->tables()[table_idx];
  for (size_t r = 0; r < t.num_rows(); ++r) {
    LSG_ASSIGN_OR_RETURN(bool pass,
                         EvalWhere(probe, where, {static_cast<uint32_t>(r)}));
    if (pass) ++n;
  }
  return n;
}

Value ReferenceEvaluator::Aggregate(
    const SelectQuery& q, const SelectItem& item,
    const std::vector<std::vector<uint32_t>>& rows) const {
  std::vector<Value> col;
  for (const auto& tup : rows) {
    col.push_back(TupleValue(q, tup, item.column));
  }
  return AggValues(item.agg, col);
}

Value ReferenceEvaluator::AggValues(AggFunc agg,
                                    const std::vector<Value>& values) {
  if (agg == AggFunc::kCount) {
    int64_t n = 0;
    for (const Value& v : values) {
      if (!v.is_null()) ++n;
    }
    return Value(n);
  }
  std::optional<Value> best;
  double sum = 0;
  int64_t n = 0;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    if (!best.has_value()) best = v;
    if (agg == AggFunc::kMax && v.Compare(*best) > 0) best = v;
    if (agg == AggFunc::kMin && v.Compare(*best) < 0) best = v;
    if (v.is_numeric()) {
      sum += v.AsNumber();
      ++n;
    }
  }
  if (!best.has_value()) return Value::Null();
  switch (agg) {
    case AggFunc::kMax:
    case AggFunc::kMin:
      return *best;
    case AggFunc::kSum:
      return Value(sum);
    case AggFunc::kAvg:
      return n > 0 ? Value(sum / n) : Value::Null();
    default:
      return Value::Null();
  }
}

}  // namespace lsg
