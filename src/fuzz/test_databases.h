#ifndef LEARNEDSQLGEN_FUZZ_TEST_DATABASES_H_
#define LEARNEDSQLGEN_FUZZ_TEST_DATABASES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace lsg {

/// The paper's running example (Figure 1): Score(T1) and Student(T2) with a
/// PK-FK edge Score.ID -> Student.ID. Deterministic contents so tests can
/// assert exact cardinalities.
Database BuildScoreStudentDb();

/// Canonical names of every bundled database: "score", "tpch", "job",
/// "xuetang". The fuzzer iterates this list when asked for all datasets.
const std::vector<std::string>& FuzzDatasetNames();

/// Builds a bundled database by name (benchmark aliases "TPC-H", "JOB" and
/// "XueTang" are accepted too). `scale` multiplies the synthetic benchmark
/// row counts; the fixed score/student example ignores it. Returns
/// InvalidArgument for unknown names.
StatusOr<Database> BuildNamedDatabase(const std::string& name,
                                      double scale = 1.0);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FUZZ_TEST_DATABASES_H_
