#include "fuzz/oracle.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "core/batch_decoder.h"
#include "core/environment.h"
#include "fsm/compiled_fsm.h"
#include "rl/policy_network.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace lsg {

namespace {

bool AstHasWhere(const QueryAst& ast) {
  switch (ast.type) {
    case QueryType::kSelect:
      return ast.select != nullptr && !ast.select->where.empty();
    case QueryType::kInsert:
      return ast.insert != nullptr && ast.insert->source != nullptr &&
             !ast.insert->source->where.empty();
    case QueryType::kUpdate:
      return ast.update != nullptr && !ast.update->where.empty();
    case QueryType::kDelete:
      return ast.del != nullptr && !ast.del->where.empty();
  }
  return false;
}

/// Cross product of the top-level joined tables — a hard ceiling no sane
/// cardinality estimate can exceed (WHERE/GROUP BY only shrink it).
double CrossProductRows(const QueryAst& ast, const Database& db) {
  const SelectQuery* q = nullptr;
  switch (ast.type) {
    case QueryType::kSelect:
      q = ast.select.get();
      break;
    case QueryType::kInsert:
      if (ast.insert->source == nullptr) return 1.0;
      q = ast.insert->source.get();
      break;
    case QueryType::kUpdate:
      return static_cast<double>(
          db.tables()[ast.update->table_idx].num_rows());
    case QueryType::kDelete:
      return static_cast<double>(db.tables()[ast.del->table_idx].num_rows());
  }
  double prod = 1.0;
  for (int t : q->tables) {
    prod *= std::max<double>(1.0, static_cast<double>(
        db.tables()[t].num_rows()));
  }
  return prod;
}

/// Index of the first differing byte, for fixpoint failure messages.
size_t FirstDiff(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

bool TablesEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      Value va = a.GetValue(r, c);
      Value vb = b.GetValue(r, c);
      if (va.is_null() != vb.is_null()) return false;
      if (!va.is_null() && va.Compare(vb) != 0) return false;
    }
  }
  return true;
}

int DmlTableIndex(const QueryAst& ast) {
  switch (ast.type) {
    case QueryType::kInsert:
      return ast.insert->table_idx;
    case QueryType::kUpdate:
      return ast.update->table_idx;
    case QueryType::kDelete:
      return ast.del->table_idx;
    case QueryType::kSelect:
      break;
  }
  return -1;
}

}  // namespace

DifferentialOracle::DifferentialOracle(Database* db, OracleOptions options)
    : db_(db),
      options_(options),
      stats_(DatabaseStats::Collect(*db)),
      estimator_(db, &stats_),
      cost_model_(&estimator_),
      exec_(db),
      dml_(db),
      reference_(db, options.max_reference_work),
      vexec_(db, vexec::VexecOptions{.inject = options.inject_vexec_bug}),
      linter_(&db->catalog()) {}

std::optional<OracleViolation> DifferentialOracle::Check(const QueryAst& ast) {
  ++checked_;
  const std::string sql = RenderSql(ast, db_->catalog());

  // 0. Static lint: every FSM-generated query must satisfy the AST-level
  // semantic rules. The linter re-derives the rule set from the catalog
  // alone (never from fsm/semantic_rules.cc), so it catches masking gaps
  // the dynamic oracles below would execute right through.
  if (options_.check_lint) {
    std::vector<LintIssue> issues = linter_.Lint(ast);
    if (!issues.empty()) {
      return OracleViolation{
          "lint", std::string(LintRuleName(issues[0].rule)) + ": " +
                      issues[0].message + " sql=" + sql};
    }
  }

  // 1. The optimized executor must accept every FSM-generated query. Join
  // blowups past the intermediate-tuple cap are resource exhaustion, not
  // bugs: skip the episode.
  auto fast = exec_.Cardinality(ast);
  if (!fast.ok()) {
    if (fast.status().code() == StatusCode::kOutOfRange) {
      ++skipped_;
      return std::nullopt;
    }
    return OracleViolation{
        "executor-error",
        fast.status().ToString() + " sql=" + sql};
  }
  uint64_t fast_card = *fast;
  if (options_.inject_card_offset != 0 && AstHasWhere(ast)) {
    int64_t shifted =
        static_cast<int64_t>(fast_card) + options_.inject_card_offset;
    fast_card = shifted < 0 ? 0 : static_cast<uint64_t>(shifted);
  }

  // 2. Differential cardinality: optimized executor vs. naive reference.
  if (options_.check_reference) {
    auto ref = reference_.EvalAst(ast);
    if (!ref.ok()) {
      if (ref.status().code() == StatusCode::kOutOfRange) {
        ++skipped_;
      } else {
        return OracleViolation{
            "reference-error", ref.status().ToString() + " sql=" + sql};
      }
    } else if (*ref != fast_card) {
      return OracleViolation{
          "exec-vs-ref",
          StrFormat("executor=%llu reference=%llu sql=",
                    static_cast<unsigned long long>(fast_card),
                    static_cast<unsigned long long>(*ref)) + sql};
    }
  }

  // 2b. Lockstep vectorized engine: vexec must reproduce the reference
  // executor bitwise — same cardinality (compared against the *uninjected*
  // executor result so this check stays independent of the exec-vs-ref
  // mutation hooks) and, for UPDATE/DELETE, the exact per-row match
  // vector. OutOfRange means both engines hit their (shared) join cap.
  if (options_.check_vexec) {
    if (ast.type == QueryType::kSelect && ast.select != nullptr) {
      // SELECTs compare the fully materialized first column, not just the
      // cardinality — a corrupted join that matches the *wrong* rows with
      // the right multiplicity is invisible to counts alone.
      auto rv = vexec_.ExecuteSelect(*ast.select, true);
      auto rr = exec_.ExecuteSelect(*ast.select, true);
      if (!rv.ok() || !rr.ok()) {
        const Status& bad = !rv.ok() ? rv.status() : rr.status();
        if (bad.code() == StatusCode::kOutOfRange) {
          ++skipped_;
        } else {
          return OracleViolation{
              "vexec", "vectorized engine error: " + bad.ToString() +
                           " sql=" + sql};
        }
      } else if (rv->cardinality != rr->cardinality) {
        return OracleViolation{
            "vexec",
            StrFormat("vectorized=%llu reference=%llu sql=",
                      static_cast<unsigned long long>(rv->cardinality),
                      static_cast<unsigned long long>(rr->cardinality)) +
                sql};
      } else {
        for (size_t i = 0; i < rr->first_column.size(); ++i) {
          const Value& a = rv->first_column[i];
          const Value& b = rr->first_column[i];
          if (a.is_null() != b.is_null() ||
              (!a.is_null() && a.Compare(b) != 0)) {
            return OracleViolation{
                "vexec",
                StrFormat("first column diverged at row %zu: "
                          "vectorized=%s reference=%s sql=",
                          i, a.ToSqlLiteral().c_str(),
                          b.ToSqlLiteral().c_str()) + sql};
          }
        }
      }
    } else {
      auto vcard = vexec_.Cardinality(ast);
      if (!vcard.ok()) {
        if (vcard.status().code() == StatusCode::kOutOfRange) {
          ++skipped_;
        } else {
          return OracleViolation{
              "vexec", "vectorized engine error: " +
                           vcard.status().ToString() + " sql=" + sql};
        }
      } else if (*vcard != *fast) {
        return OracleViolation{
            "vexec",
            StrFormat("vectorized=%llu reference=%llu sql=",
                      static_cast<unsigned long long>(*vcard),
                      static_cast<unsigned long long>(*fast)) + sql};
      }
    }
    if (ast.type == QueryType::kUpdate || ast.type == QueryType::kDelete) {
      const int t = ast.type == QueryType::kUpdate ? ast.update->table_idx
                                                   : ast.del->table_idx;
      const WhereClause& w = ast.type == QueryType::kUpdate
                                 ? ast.update->where
                                 : ast.del->where;
      auto mv = vexec_.MatchRows(t, w);
      auto mr = exec_.MatchRows(t, w);
      if (!mv.ok() || !mr.ok()) {
        const Status& bad = !mv.ok() ? mv.status() : mr.status();
        if (bad.code() == StatusCode::kOutOfRange) {
          ++skipped_;
        } else {
          return OracleViolation{
              "vexec", "MatchRows error: " + bad.ToString() + " sql=" + sql};
        }
      } else if (*mv != *mr) {
        size_t diff = 0;
        while (diff < mv->size() && diff < mr->size() &&
               (*mv)[diff] == (*mr)[diff]) {
          ++diff;
        }
        return OracleViolation{
            "vexec",
            StrFormat("match vector diverged at row %zu "
                      "(vectorized=%d reference=%d) sql=",
                      diff,
                      diff < mv->size() ? ((*mv)[diff] ? 1 : 0) : -1,
                      diff < mr->size() ? ((*mr)[diff] ? 1 : 0) : -1) + sql};
      }
    }
  }

  // 3. Round trip: Render(Parse(Render(q))) must equal Render(q) byte for
  // byte, and the reparsed AST must execute to the same cardinality.
  if (options_.check_roundtrip) {
    std::string rendered = sql;
    if (options_.inject_render_space) {
      size_t sp = rendered.find(' ');
      if (sp != std::string::npos) rendered.insert(sp, " ");
    }
    auto parsed = ParseSql(rendered, db_->catalog());
    if (!parsed.ok()) {
      return OracleViolation{
          "reparse-error", parsed.status().ToString() + " sql=" + rendered};
    }
    std::string again = RenderSql(*parsed, db_->catalog());
    if (again != rendered) {
      return OracleViolation{
          "render-fixpoint",
          StrFormat("first diff at byte %zu: ", FirstDiff(again, rendered)) +
              "rendered=" + rendered + " reparsed=" + again};
    }
    auto re = exec_.Cardinality(*parsed);
    if (!re.ok()) {
      if (re.status().code() != StatusCode::kOutOfRange) {
        return OracleViolation{
            "reparse-error",
            "reparsed query failed to execute: " + re.status().ToString() +
                " sql=" + rendered};
      }
    } else if (*re != *fast) {
      return OracleViolation{
          "reparse-exec",
          StrFormat("original=%llu reparsed=%llu sql=",
                    static_cast<unsigned long long>(*fast),
                    static_cast<unsigned long long>(*re)) + rendered};
    }
  }

  // 4. Estimator sanity: finite, non-negative, below the cross product.
  if (options_.check_estimator) {
    double est = estimator_.EstimateCardinality(ast);
    double bound =
        options_.estimator_slack * CrossProductRows(ast, *db_) + 1.0;
    if (!std::isfinite(est) || est < 0.0 || est > bound) {
      return OracleViolation{
          "estimator-bounds",
          StrFormat("estimate=%g bound=%g sql=", est, bound) + sql};
    }
  }

  // 5. DML applied for real under snapshot/rollback.
  if (options_.check_dml_apply && ast.type != QueryType::kSelect) {
    auto v = CheckDmlApply(ast, fast_card);
    if (v.has_value()) return v;
  }
  return std::nullopt;
}

std::optional<OracleViolation> DifferentialOracle::CheckDmlApply(
    const QueryAst& ast, uint64_t predicted) {
  // INSERT..SELECT apply needs full-row projection the engine does not
  // implement; the dry-run count is already differentially checked above.
  if (ast.type == QueryType::kInsert && ast.insert->source != nullptr) {
    return std::nullopt;
  }
  const int table_idx = DmlTableIndex(ast);
  const std::string sql = RenderSql(ast, db_->catalog());
  const std::string table_name = db_->catalog().table(table_idx).name();
  Table* live = db_->FindMutableTable(table_name);
  if (live == nullptr) {
    return OracleViolation{"dml-apply", "target table missing: " + sql};
  }
  const Table snapshot = *live;  // deep copy: schema + columns

  auto applied = dml_.Apply(db_, ast);
  if (!applied.ok()) {
    *live = snapshot;
    return OracleViolation{
        "dml-apply", applied.status().ToString() + " sql=" + sql};
  }
  std::string failure;
  if (*applied != predicted) {
    failure = StrFormat("applied=%llu dry-run=%llu sql=",
                        static_cast<unsigned long long>(*applied),
                        static_cast<unsigned long long>(predicted)) + sql;
  } else {
    // Row-count delta must match the statement type.
    const size_t before = snapshot.num_rows();
    const size_t after = live->num_rows();
    size_t expect = before;
    if (ast.type == QueryType::kInsert) expect = before + 1;
    if (ast.type == QueryType::kDelete) expect = before - *applied;
    if (after != expect) {
      failure = StrFormat("rows before=%zu after=%zu expected=%zu sql=",
                          before, after, expect) + sql;
    }
  }
  *live = snapshot;  // rollback
  if (!failure.empty()) return OracleViolation{"dml-apply", failure};
  // End-to-end rollback check: the restored table must be byte-identical
  // and the dry run must still count the same rows it did before apply.
  if (!TablesEqual(*live, snapshot)) {
    return OracleViolation{"dml-rollback",
                           "snapshot restore left " + table_name +
                               " in a different state, sql=" + sql};
  }
  auto recount = exec_.Cardinality(ast);
  if (!recount.ok() || *recount != *applied) {
    return OracleViolation{
        "dml-rollback",
        StrFormat("post-rollback dry run %s (want %llu) sql=",
                  recount.ok() ? StrFormat("counts %llu",
                                           static_cast<unsigned long long>(
                                               *recount)).c_str()
                               : recount.status().ToString().c_str(),
                  static_cast<unsigned long long>(*applied)) + sql};
  }
  return std::nullopt;
}

namespace {

// Exact equality, treating NaN as matching NaN (the invariant is "same
// bits", not numeric closeness).
bool SameEstimate(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace

std::optional<OracleViolation> DifferentialOracle::CheckPrefixEstimates(
    const Vocabulary* vocab, const QueryProfile& profile,
    const std::vector<int>& actions) {
  if (!options_.check_prefix_estimates) return std::nullopt;
  GenerationFsm fsm(db_, vocab, profile);
  PrefixEstimator incremental(&estimator_, &cost_model_);
  for (size_t i = 0; i < actions.size(); ++i) {
    Status st = fsm.Step(actions[i]);
    if (!st.ok()) {
      return OracleViolation{
          "prefix-estimate",
          StrFormat("replay rejected token %zu: ", i) + st.ToString()};
    }
    if (!fsm.done() && !fsm.IsExecutablePrefix()) continue;
    const QueryAst& ast = fsm.builder().ast();
    if (ast.type != QueryType::kSelect || ast.select == nullptr) continue;
    const double inc_card = incremental.Cardinality(*ast.select);
    const double full_card = estimator_.EstimateSelect(*ast.select, nullptr);
    if (!SameEstimate(inc_card, full_card)) {
      return OracleViolation{
          "prefix-estimate",
          StrFormat("cardinality diverged at token %zu: incremental=%.17g "
                    "full=%.17g",
                    i, inc_card, full_card)};
    }
    const double inc_cost = incremental.Cost(*ast.select);
    const double full_cost = cost_model_.SelectCost(*ast.select);
    if (!SameEstimate(inc_cost, full_cost)) {
      return OracleViolation{
          "prefix-estimate",
          StrFormat("cost diverged at token %zu: incremental=%.17g "
                    "full=%.17g",
                    i, inc_cost, full_cost)};
    }
  }
  return std::nullopt;
}

std::optional<OracleViolation> DifferentialOracle::CheckCompiledFsm(
    const Vocabulary* vocab, const QueryProfile& profile,
    const CompiledFsmTable* table, const std::vector<int>& actions) {
  if (!options_.check_compiled_fsm || table == nullptr) return std::nullopt;
  GenerationFsm interp(db_, vocab, profile);
  CompiledGenerationFsm compiled(db_, vocab, profile, table);
  // One comparison per prefix, including the empty one and the final
  // (done) state after the last action.
  for (size_t i = 0; i <= actions.size(); ++i) {
    if (interp.done() != compiled.done()) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("done() diverged before token %zu: interpreted=%d "
                    "compiled=%d",
                    i, interp.done() ? 1 : 0, compiled.done() ? 1 : 0)};
    }
    if (!compiled.done() && !compiled.compiled_active()) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("compiled walk left the table before token %zu "
                    "(transition gap)",
                    i)};
    }
    const std::vector<uint8_t>& mi = interp.ValidActions();
    const std::vector<uint8_t>& mc = compiled.ValidActions();
    int wi = 0, wc = 0;
    int first_diff = -1;
    for (int id = 0; id < vocab->size(); ++id) {
      const bool a = mi[id] != 0, b = mc[id] != 0;
      wi += a ? 1 : 0;
      wc += b ? 1 : 0;
      if (a != b && first_diff < 0) first_diff = id;
    }
    if (first_diff >= 0) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("mask diverged before token %zu at token id %d (%s): "
                    "interpreted=%d compiled=%d",
                    i, first_diff, vocab->token(first_diff).text.c_str(),
                    mi[first_diff] != 0 ? 1 : 0, mc[first_diff] != 0 ? 1 : 0)};
    }
    if (interp.last_mask_width() != compiled.last_mask_width() || wi != wc) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("mask width diverged before token %zu: interpreted=%d/%d "
                    "compiled=%d/%d",
                    i, wi, interp.last_mask_width(), wc,
                    compiled.last_mask_width())};
    }
    if (i == actions.size()) break;
    Status si = interp.Step(actions[i]);
    Status sc = compiled.Step(actions[i]);
    if (si.ok() != sc.ok()) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("step %zu accept diverged: interpreted=%s compiled=%s", i,
                    si.ToString().c_str(), sc.ToString().c_str())};
    }
    if (!si.ok()) {
      return OracleViolation{
          "compiled-fsm",
          StrFormat("replay rejected token %zu: ", i) + si.ToString()};
    }
  }
  if (compiled.done() &&
      compiled.compiled_state() != table->accept_state()) {
    return OracleViolation{
        "compiled-fsm",
        StrFormat("finished episode not on the accept state: state=%u "
                  "accept=%u",
                  compiled.compiled_state(), table->accept_state())};
  }
  return std::nullopt;
}

std::optional<OracleViolation> DifferentialOracle::CheckBatchDecode(
    const Vocabulary* vocab, const QueryProfile& profile, uint64_t seed) {
  if (!options_.check_batch_decode) return std::nullopt;
  constexpr int kMaxSteps = 512;  // both decoders share this hard cap

  // Small random-weight policy: the batched forward must reproduce the
  // scalar path for *any* parameters, so no training is needed.
  NetworkOptions net;
  net.hidden_dim = 12;
  net.seed = SplitMix64(seed ^ 0xba7c4dec0deULL);
  PolicyNetwork actor(vocab->size(), net);

  EnvironmentOptions env_opts;
  env_opts.profile = profile;
  // A wide range keeps the comparison about decoding, not learnability.
  const Constraint constraint =
      Constraint::Range(ConstraintMetric::kCardinality, 1.0, 1e12);

  // Scalar reference: the exact loop the unbatched serving path runs —
  // per-step TryNextDistribution (LSTM MatVec forward) + SampleAction on
  // the item's private stream.
  struct RefQuery {
    std::string sql;
    double metric = 0.0;
    bool satisfied = false;
  };
  auto run_scalar = [&](uint64_t rng_seed,
                        int n) -> StatusOr<std::vector<RefQuery>> {
    Rng rng(rng_seed);
    SqlGenEnvironment env(db_, vocab, &estimator_, &cost_model_, constraint,
                          env_opts);
    std::vector<RefQuery> out;
    for (int attempt = 0; attempt < n; ++attempt) {
      env.Reset();
      PolicyNetwork::Episode ep = actor.BeginEpisode(/*train=*/false);
      for (int step = 0;; ++step) {
        if (step >= kMaxSteps) {
          return Status::Internal("scalar episode exceeded the step cap");
        }
        const std::vector<float>* probs = nullptr;
        LSG_RETURN_IF_ERROR(
            actor.TryNextDistribution(&ep, env.ValidActions(), &probs));
        const int a = actor.SampleAction(*probs, &rng);
        actor.RecordAction(&ep, a);
        LSG_ASSIGN_OR_RETURN(EnvStepResult sr, env.Step(a));
        if (sr.done) {
          RefQuery q;
          const QueryAst ast = env.TakeAst();
          q.sql = RenderSql(ast, db_->catalog());
          q.metric = sr.metric;
          q.satisfied = sr.satisfied;
          out.push_back(std::move(q));
          break;
        }
      }
    }
    return out;
  };

  ServingSnapshot snap;
  snap.db = db_;
  snap.vocab = vocab;
  snap.estimator = &estimator_;
  snap.cost_model = &cost_model_;
  snap.actor = &actor;
  snap.env_opts = env_opts;
  snap.constraint = constraint;

  // Ragged shapes: distinct budgets so lanes retire at different steps and
  // the batch width shrinks mid-run.
  const std::vector<int> budgets = {2, 1, 3};
  std::vector<BatchDecodeItem> items(budgets.size());
  for (size_t b = 0; b < items.size(); ++b) {
    items[b].n = budgets[b];
    items[b].batch_mode = true;  // fixed attempts: every episode compared
    items[b].rng_seed = SplitMix64(seed + 0x1000 + b);
  }
  std::vector<BatchDecodeItem*> ptrs;
  for (BatchDecodeItem& item : items) ptrs.push_back(&item);
  BatchDecoder decoder(&snap, static_cast<int>(items.size()));
  decoder.Run(ptrs);

  for (size_t b = 0; b < items.size(); ++b) {
    const BatchDecodeItem& item = items[b];
    if (!item.status.ok()) {
      return OracleViolation{
          "batch-decode",
          StrFormat("lane %zu failed: ", b) + item.status.ToString()};
    }
    auto ref = run_scalar(item.rng_seed, item.n);
    if (!ref.ok()) {
      return OracleViolation{
          "batch-decode",
          StrFormat("scalar reference for lane %zu failed: ", b) +
              ref.status().ToString()};
    }
    if (item.report.attempts != item.n ||
        item.report.queries.size() != ref->size()) {
      return OracleViolation{
          "batch-decode",
          StrFormat("lane %zu shape diverged: attempts=%d queries=%zu "
                    "scalar=%zu",
                    b, item.report.attempts, item.report.queries.size(),
                    ref->size())};
    }
    for (size_t q = 0; q < ref->size(); ++q) {
      const GeneratedQuery& got = item.report.queries[q];
      const RefQuery& want = (*ref)[q];
      if (got.sql != want.sql) {
        return OracleViolation{
            "batch-decode",
            StrFormat("lane %zu query %zu sql diverged: batched=\"%s\" "
                      "scalar=\"%s\"",
                      b, q, got.sql.c_str(), want.sql.c_str())};
      }
      if (!SameEstimate(got.metric, want.metric) ||
          got.satisfied != want.satisfied) {
        return OracleViolation{
            "batch-decode",
            StrFormat("lane %zu query %zu metric diverged: batched=%.17g/%d "
                      "scalar=%.17g/%d",
                      b, q, got.metric, got.satisfied ? 1 : 0, want.metric,
                      want.satisfied ? 1 : 0)};
      }
    }
  }
  return std::nullopt;
}

}  // namespace lsg
