#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <map>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include "common/string_util.h"

namespace lsg {
namespace net {
namespace {

#if defined(__linux__)

class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status Init() const {
    if (epfd_ < 0) {
      return Status::Internal(
          StrFormat("epoll_create1: %s", ErrnoString(errno).c_str()));
    }
    return Status::Ok();
  }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  Status Mod(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  void Del(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  StatusOr<int> Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    out->clear();
    epoll_event events[kMaxEvents];
    int n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      return Status::Internal(
          StrFormat("epoll_wait: %s", ErrnoString(errno).c_str()));
    }
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  static constexpr int kMaxEvents = 128;

  Status Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return Status::Internal(
          StrFormat("epoll_ctl(fd=%d): %s", fd, ErrnoString(errno).c_str()));
    }
    return Status::Ok();
  }

  int epfd_;
};

#endif  // defined(__linux__)

class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    if (interest_.count(fd) != 0) {
      return Status::AlreadyExists(StrFormat("fd %d already polled", fd));
    }
    interest_[fd] = Mask(want_read, want_write);
    return Status::Ok();
  }

  Status Mod(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::NotFound(StrFormat("fd %d not polled", fd));
    }
    it->second = Mask(want_read, want_write);
    return Status::Ok();
  }

  void Del(int fd) override { interest_.erase(fd); }

  StatusOr<int> Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    out->clear();
    fds_.clear();
    fds_.reserve(interest_.size());
    for (const auto& [fd, mask] : interest_) {
      fds_.push_back(pollfd{fd, mask, 0});
    }
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      return Status::Internal(StrFormat("poll: %s", ErrnoString(errno).c_str()));
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(e);
    }
    return n;
  }

  const char* name() const override { return "poll"; }

 private:
  static short Mask(bool want_read, bool want_write) {
    short m = 0;
    if (want_read) m |= POLLIN;
    if (want_write) m |= POLLOUT;
    return m;
  }

  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll) {
#if defined(__linux__)
  if (!force_poll) {
    auto poller = std::make_unique<EpollPoller>();
    if (poller->Init().ok()) return poller;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace net
}  // namespace lsg
