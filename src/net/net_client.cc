#include "net/net_client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/string_util.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace lsg {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, ErrnoString(errno).c_str()));
}

void SetTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_), rdbuf_(std::move(other.rdbuf_)) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rdbuf_ = std::move(other.rdbuf_);
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<BlockingClient> BlockingClient::Connect(const std::string& host,
                                                 int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad host \"%s\"", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  SetTimeout(fd, timeout_ms);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  BlockingClient client;
  client.fd_ = fd;
  return client;
}

Status BlockingClient::Send(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

Status BlockingClient::SendLine(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  return Send(framed);
}

StatusOr<std::string> BlockingClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    size_t nl = rdbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rdbuf_.substr(0, nl);
      rdbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[8192];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rdbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::FailedPrecondition("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::OutOfRange("read timed out");
    }
    return Errno("recv");
  }
}

StatusOr<obs::JsonValue> BlockingClient::Call(std::string_view request_line) {
  LSG_RETURN_IF_ERROR(SendLine(request_line));
  LSG_ASSIGN_OR_RETURN(std::string line, ReadLine());
  return obs::JsonParse(line);
}

void BlockingClient::CloseWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
}

std::string BuildRequestLine(std::string_view tenant, uint64_t id,
                             std::string_view constraint_json, int count,
                             bool batch) {
  return StrFormat(
      "{\"tenant\": \"%.*s\", \"id\": %llu, \"count\": %d, "
      "\"batch\": %s, \"constraint\": %.*s}",
      static_cast<int>(tenant.size()), tenant.data(),
      static_cast<unsigned long long>(id), count, batch ? "true" : "false",
      static_cast<int>(constraint_json.size()), constraint_json.data());
}

std::string LoadDriverReport::ToString() const {
  std::string out = StrFormat(
      "{\"sent\": %llu, \"ok\": %llu, \"errors\": %llu, "
      "\"wall_seconds\": %.3f, \"req_per_second\": %.1f, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors), wall_seconds, req_per_second,
      p50_ms, p99_ms);
  for (const auto& [code, n] : errors_by_code) {
    out += StrFormat(", \"error.%s\": %llu", code.c_str(),
                     static_cast<unsigned long long>(n));
  }
  out += "}";
  return out;
}

StatusOr<LoadDriverReport> RunLoadDriver(const LoadDriverOptions& options) {
  if (options.connections <= 0 || options.requests_per_connection <= 0) {
    return Status::InvalidArgument("load driver needs positive counts");
  }
  const int depth = std::max(1, options.pipeline_depth);

  LoadDriverReport report;
  std::vector<double> latencies_ms;
  Mutex mu;
  Status first_error = Status::Ok();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);

  Stopwatch wall;
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          BlockingClient::Connect(options.host, options.port,
                                  options.timeout_ms);
      if (!client.ok()) {
        MutexLock lock(&mu);
        if (first_error.ok()) first_error = client.status();
        return;
      }
      std::string tenant =
          options.tenants > 1
              ? StrFormat("%s-%d", options.tenant.c_str(),
                          c % options.tenants)
              : options.tenant;
      std::map<uint64_t, uint64_t> sent_ns;  // id -> send timestamp
      uint64_t local_sent = 0, local_ok = 0, local_errors = 0;
      std::map<std::string, uint64_t> local_codes;
      std::vector<double> local_lat;
      int inflight = 0;
      Status st = Status::Ok();

      auto read_one = [&]() {
        auto line = client->ReadLine();
        if (!line.ok()) {
          st = line.status();
          return false;
        }
        auto doc = obs::JsonParse(*line);
        if (!doc.ok() || !doc->is_object()) {
          st = Status::Internal(
              StrFormat("unparseable response: %s", line->c_str()));
          return false;
        }
        uint64_t id = static_cast<uint64_t>(doc->NumberOr("id", 0));
        auto it = sent_ns.find(id);
        if (it != sent_ns.end()) {
          local_lat.push_back(
              static_cast<double>(Stopwatch::NowNanos() - it->second) / 1e6);
          sent_ns.erase(it);
        }
        if (doc->NumberOr("ok", 0) == 1.0) {
          ++local_ok;
        } else {
          ++local_errors;
          ++local_codes[doc->StringOr("error", "unknown")];
        }
        --inflight;
        return true;
      };

      for (int i = 0; i < options.requests_per_connection && st.ok(); ++i) {
        uint64_t id = static_cast<uint64_t>(c) * 1000000ull +
                      static_cast<uint64_t>(i) + 1;
        std::string line =
            options.ping_only
                ? StrFormat("{\"op\": \"ping\", \"id\": %llu}",
                            static_cast<unsigned long long>(id))
                : BuildRequestLine(tenant, id, options.constraint_json,
                                   options.count, false);
        sent_ns[id] = Stopwatch::NowNanos();
        st = client->SendLine(line);
        if (!st.ok()) break;
        ++local_sent;
        ++inflight;
        while (inflight >= depth && st.ok()) {
          if (!read_one()) break;
        }
      }
      while (st.ok() && inflight > 0) {
        if (!read_one()) break;
      }

      MutexLock lock(&mu);
      report.sent += local_sent;
      report.ok += local_ok;
      report.errors += local_errors;
      for (const auto& [code, n] : local_codes) {
        report.errors_by_code[code] += n;
      }
      latencies_ms.insert(latencies_ms.end(), local_lat.begin(),
                          local_lat.end());
      if (!st.ok() && first_error.ok()) first_error = st;
    });
  }
  for (std::thread& t : threads) t.join();
  report.wall_seconds = wall.ElapsedSeconds();
  if (!first_error.ok()) return first_error;

  if (report.sent != report.ok + report.errors) {
    return Status::Internal(
        StrFormat("response accounting mismatch: sent %llu, answered %llu",
                  static_cast<unsigned long long>(report.sent),
                  static_cast<unsigned long long>(report.ok + report.errors)));
  }
  report.req_per_second =
      report.wall_seconds > 0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0.0;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto at = [&](double q) {
      size_t i = static_cast<size_t>(q * (latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    report.p50_ms = at(0.5);
    report.p99_ms = at(0.99);
  }
  return report;
}

std::string NetFuzzReport::ToString() const {
  return StrFormat(
      "{\"connections\": %llu, \"frames_sent\": %llu, "
      "\"well_formed_sent\": %llu, \"responses\": %llu, "
      "\"parse_failures\": %llu, \"early_disconnects\": %llu}",
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(frames_sent),
      static_cast<unsigned long long>(well_formed_sent),
      static_cast<unsigned long long>(responses),
      static_cast<unsigned long long>(parse_failures),
      static_cast<unsigned long long>(early_disconnects));
}

namespace {

// One misbehaving-client thread of the protocol fuzzer.
struct FuzzWorker {
  const NetFuzzOptions* options;
  Rng rng;
  NetFuzzReport report;
  Status status = Status::Ok();

  void Run() {
    for (int round = 0; round < options->rounds && status.ok(); ++round) {
      RunRound();
      // Liveness gate: the server must still answer a clean ping.
      auto probe = BlockingClient::Connect(options->host, options->port,
                                           10000);
      if (!probe.ok()) {
        status = Status::Internal(
            StrFormat("server unreachable after round %d: %s", round,
                      probe.status().ToString().c_str()));
        return;
      }
      auto pong = probe->Call("{\"op\": \"ping\", \"id\": 99}");
      if (!pong.ok() || pong->NumberOr("pong", 0) != 1.0) {
        status = Status::Internal(
            StrFormat("ping failed after round %d", round));
        return;
      }
    }
  }

  void RunRound() {
    auto client = BlockingClient::Connect(options->host, options->port, 5000);
    if (!client.ok()) return;  // transient refusal (conn cap) is legal
    ++report.connections;
    int frames = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < frames; ++f) {
      switch (rng.Uniform(9)) {
        case 0: {  // valid cheap request (range constraint, cache-friendly)
          SendTracked(&*client,
                      BuildRequestLine("fuzz", rng.Next() % 1000,
                                       "{\"metric\": \"card\", \"kind\": "
                                       "\"range\", \"lo\": 1, \"hi\": 100000}",
                                       1, false),
                      /*well_formed=*/true);
          break;
        }
        case 1:
          SendTracked(&*client, "{\"op\": \"ping\", \"id\": 1}", true);
          break;
        case 2:  // malformed JSON
          SendTracked(&*client, "{\"tenant\": \"x\", \"count\": ", false);
          break;
        case 3: {  // binary garbage
          std::string junk;
          size_t len = 1 + rng.Uniform(512);
          for (size_t i = 0; i < len; ++i) {
            char c = static_cast<char>(rng.Uniform(256));
            if (c == '\n') c = ' ';
            junk += c;
          }
          SendTracked(&*client, junk, false);
          break;
        }
        case 4: {  // oversized line
          std::string big(options->max_frame_bytes + 128, 'x');
          SendTracked(&*client, big, false);
          break;
        }
        case 5: {  // deep nesting (parser recursion guard)
          std::string deep;
          size_t depth = 16 + rng.Uniform(512);
          deep.append(depth, '[');
          deep.append(depth, ']');
          SendTracked(&*client, deep, false);
          break;
        }
        case 6: {  // slow-loris: one valid frame in dribbled chunks
          std::string line = "{\"op\": \"ping\", \"id\": 6}\n";
          for (size_t off = 0; off < line.size();) {
            size_t chunk = 1 + rng.Uniform(5);
            chunk = std::min(chunk, line.size() - off);
            if (!client->Send(std::string_view(line).substr(off, chunk))
                     .ok()) {
              break;
            }
            off += chunk;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(rng.Uniform(3)));
          }
          ++report.frames_sent;
          ++report.well_formed_sent;
          break;
        }
        case 7: {  // mid-request disconnect
          (void)client->Send("{\"tenant\": \"half");
          client->Close();
          ++report.early_disconnects;
          return;
        }
        default:  // empty lines and CRLF noise
          (void)client->Send("\r\n\n\r\n");
          break;
      }
    }
    DrainResponses(&*client);
  }

  void SendTracked(BlockingClient* client, std::string_view line,
                   bool well_formed) {
    if (!client->SendLine(line).ok()) return;
    ++report.frames_sent;
    if (well_formed) ++report.well_formed_sent;
  }

  // Reads whatever the server sent back; every line must parse as JSON.
  void DrainResponses(BlockingClient* client) {
    client->CloseWrite();
    while (true) {
      auto line = client->ReadLine();
      if (!line.ok()) break;  // EOF or timeout ends the round
      ++report.responses;
      auto doc = obs::JsonParse(*line);
      if (!doc.ok() || !doc->is_object() || doc->Find("ok") == nullptr) {
        ++report.parse_failures;
        if (status.ok()) {
          status = Status::Internal(
              StrFormat("unparseable server response: %.120s",
                        line->c_str()));
        }
      }
    }
  }
};

}  // namespace

StatusOr<NetFuzzReport> FuzzNetProtocol(const NetFuzzOptions& options) {
  std::vector<FuzzWorker> workers(
      static_cast<size_t>(std::max(1, options.clients)));
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    workers[i].options = &options;
    workers[i].rng = Rng(SplitMix64(options.seed + i));
    threads.emplace_back([w = &workers[i]] { w->Run(); });
  }
  for (std::thread& t : threads) t.join();

  NetFuzzReport total;
  for (const FuzzWorker& w : workers) {
    if (!w.status.ok()) return w.status;
    total.connections += w.report.connections;
    total.frames_sent += w.report.frames_sent;
    total.well_formed_sent += w.report.well_formed_sent;
    total.responses += w.report.responses;
    total.parse_failures += w.report.parse_failures;
    total.early_disconnects += w.report.early_disconnects;
  }
  if (total.parse_failures != 0) {
    return Status::Internal(
        StrFormat("%llu unparseable response line(s)",
                  static_cast<unsigned long long>(total.parse_failures)));
  }
  return total;
}

}  // namespace net
}  // namespace lsg
