#include "net/admission.h"

namespace lsg {
namespace net {

AdmissionController::TenantState* AdmissionController::GetTenant(
    const std::string& tenant, uint64_t now_ns) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;
  if (tenants_.size() >= options_.max_tenants) {
    // Bound memory under tenant-name floods: recycle an idle tenant's
    // slot. A recycled tenant starts over with a full bucket, which is
    // acceptable — the flood itself is what evicted it.
    for (auto scan = tenants_.begin(); scan != tenants_.end(); ++scan) {
      if (scan->second.inflight == 0) {
        tenants_.erase(scan);
        break;
      }
    }
    if (tenants_.size() >= options_.max_tenants) return nullptr;
  }
  return &tenants_.emplace(tenant, TenantState(options_, now_ns))
              .first->second;
}

NetError AdmissionController::Admit(const std::string& tenant,
                                    uint64_t now_ns) {
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    return NetError::kOverInflight;
  }
  TenantState* state = GetTenant(tenant, now_ns);
  if (state == nullptr) return NetError::kOverInflight;
  if (options_.tenant_max_inflight > 0 &&
      state->inflight >= options_.tenant_max_inflight) {
    return NetError::kOverInflight;
  }
  if (!state->bucket.TryAcquire(now_ns)) return NetError::kOverQuota;
  ++state->inflight;
  ++inflight_;
  return NetError::kNone;
}

void AdmissionController::Release(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  if (it->second.inflight > 0) --it->second.inflight;
  if (inflight_ > 0) --inflight_;
}

int AdmissionController::tenant_inflight(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.inflight;
}

}  // namespace net
}  // namespace lsg
