#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/span_tracer.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace lsg {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, ErrnoString(errno).c_str()));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

}  // namespace

DispatchOutcome ServiceDispatcher::Dispatch(GenerationRequest request) {
  DispatchOutcome out;
  auto future = service_->TrySubmit(std::move(request));
  if (future.ok()) {
    out.future = std::move(*future);
    return out;
  }
  out.message = future.status().message();
  switch (future.status().code()) {
    case StatusCode::kResourceExhausted:
      out.error = NetError::kQueueFull;
      break;
    case StatusCode::kFailedPrecondition:
      out.error = NetError::kDraining;
      break;
    default:
      out.error = NetError::kInternal;
  }
  return out;
}

/// Cached handles for every net.* metric, bound once at server creation.
struct NetServer::Metrics {
  explicit Metrics(obs::MetricsRegistry* r)
      : conn_accepted(r->GetCounter("net.conn.accepted")),
        conn_closed(r->GetCounter("net.conn.closed")),
        conn_refused(r->GetCounter("net.conn.refused")),
        conn_idle_closed(r->GetCounter("net.conn.idle_closed")),
        conn_overflow_closed(r->GetCounter("net.conn.overflow_closed")),
        conn_error_closed(r->GetCounter("net.conn.error_closed")),
        conn_pool_reuse(r->GetCounter("net.conn.pool_reuse")),
        req_received(r->GetCounter("net.req.received")),
        req_pings(r->GetCounter("net.req.pings")),
        req_ok(r->GetCounter("net.req.ok")),
        req_dispatched(r->GetCounter("net.req.dispatched")),
        req_bad_frame(r->GetCounter("net.req.bad_frame")),
        req_oversized(r->GetCounter("net.req.oversized")),
        req_bad_request(r->GetCounter("net.req.bad_request")),
        req_over_quota(r->GetCounter("net.req.over_quota")),
        req_over_inflight(r->GetCounter("net.req.over_inflight")),
        req_queue_full(r->GetCounter("net.req.queue_full")),
        req_draining(r->GetCounter("net.req.draining")),
        req_timeout(r->GetCounter("net.req.timeout")),
        req_internal(r->GetCounter("net.req.internal")),
        req_orphaned(r->GetCounter("net.req.orphaned")),
        req_late(r->GetCounter("net.req.late")),
        loop_polls(r->GetCounter("net.loop.polls")),
        loop_wakeups(r->GetCounter("net.loop.wakeups")),
        conn_open(r->GetGauge("net.conn.open")),
        req_inflight(r->GetGauge("net.req.inflight")),
        parse_ns(r->GetHistogram("net.req.parse_ns")),
        dispatch_ns(r->GetHistogram("net.req.dispatch_ns")),
        e2e_ns(r->GetHistogram("net.req.e2e_ns")) {}

  obs::Counter& conn_accepted;
  obs::Counter& conn_closed;
  obs::Counter& conn_refused;
  obs::Counter& conn_idle_closed;
  obs::Counter& conn_overflow_closed;
  obs::Counter& conn_error_closed;
  obs::Counter& conn_pool_reuse;
  obs::Counter& req_received;
  obs::Counter& req_pings;
  obs::Counter& req_ok;
  obs::Counter& req_dispatched;
  obs::Counter& req_bad_frame;
  obs::Counter& req_oversized;
  obs::Counter& req_bad_request;
  obs::Counter& req_over_quota;
  obs::Counter& req_over_inflight;
  obs::Counter& req_queue_full;
  obs::Counter& req_draining;
  obs::Counter& req_timeout;
  obs::Counter& req_internal;
  obs::Counter& req_orphaned;
  obs::Counter& req_late;
  obs::Counter& loop_polls;
  obs::Counter& loop_wakeups;
  obs::Gauge& conn_open;
  obs::Gauge& req_inflight;
  obs::Histogram& parse_ns;
  obs::Histogram& dispatch_ns;
  obs::Histogram& e2e_ns;

  /// The response counter for one structured error (conservation: every
  /// received frame bumps exactly one of ok/pings/these/orphaned).
  obs::Counter& ErrorCounter(NetError e) {
    switch (e) {
      case NetError::kBadFrame: return req_bad_frame;
      case NetError::kFrameTooLarge: return req_oversized;
      case NetError::kBadRequest: return req_bad_request;
      case NetError::kOverQuota: return req_over_quota;
      case NetError::kOverInflight: return req_over_inflight;
      case NetError::kQueueFull: return req_queue_full;
      case NetError::kDraining: return req_draining;
      case NetError::kTimeout: return req_timeout;
      default: return req_internal;
    }
  }
};

void NetServer::Conn::Recycle(int new_fd, uint64_t new_id, uint64_t now_ns) {
  fd = new_fd;
  id = new_id;
  fsm.Reset();
  outbuf.clear();
  out_off = 0;
  last_active_ns = now_ns;
  inflight = 0;
  want_write = false;
}

NetServer::NetServer(RequestDispatcher* dispatcher,
                     const NetServerOptions& options)
    : dispatcher_(dispatcher),
      options_(options),
      owned_registry_(options.metrics_registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(options.metrics_registry != nullptr
                    ? options.metrics_registry
                    : owned_registry_.get()),
      poller_(Poller::Create(options.force_poll)),
      admission_(options.admission),
      m_(std::make_unique<Metrics>(registry_)) {}

NetServer::~NetServer() {
  BeginDrain();
  Join();
  Teardown();
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (wake_write_fd_ >= 0) {
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
}

StatusOr<std::unique_ptr<NetServer>> NetServer::Create(
    RequestDispatcher* dispatcher, const NetServerOptions& options) {
  if (dispatcher == nullptr) {
    return Status::InvalidArgument("NetServer needs a dispatcher");
  }
  if (options.completion_waiters <= 0) {
    return Status::InvalidArgument("completion_waiters must be positive");
  }
  std::unique_ptr<NetServer> server(new NetServer(dispatcher, options));
  LSG_RETURN_IF_ERROR(server->Listen());

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Errno("pipe");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  LSG_RETURN_IF_ERROR(SetNonBlocking(server->wake_read_fd_));
  LSG_RETURN_IF_ERROR(SetNonBlocking(server->wake_write_fd_));

  LSG_RETURN_IF_ERROR(server->poller_->Add(server->listen_fd_, true, false));
  LSG_RETURN_IF_ERROR(server->poller_->Add(server->wake_read_fd_, true,
                                           false));

  server->waiters_.reserve(options.completion_waiters);
  for (int i = 0; i < options.completion_waiters; ++i) {
    server->waiters_.emplace_back([s = server.get()] { s->WaiterMain(); });
  }
  return server;
}

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  LSG_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    return Status::InvalidArgument(
        StrFormat("bad listen address \"%s\"", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status NetServer::Run() {
  LSG_LOG(Info) << "lsgserved listening on " << options_.host << ":" << port_
                << " (" << poller_->name() << " backend)";
  while (!done_) {
    Status st = LoopOnce();
    if (!st.ok()) {
      loop_status_ = st;
      break;
    }
  }
  Teardown();
  return loop_status_;
}

Status NetServer::Start() {
  loop_thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

Status NetServer::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
  return loop_status_;
}

void NetServer::BeginDrain() {
  // relaxed: a level-semantic flag; the loop re-reads it every poll cycle
  // and drain carries no payload that needs ordering (async-signal-safe).
  drain_requested_.store(true, std::memory_order_relaxed);
  WakeLoop();
}

void NetServer::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  char b = 'w';
  // A full pipe means the loop is already due to wake; dropping the byte
  // is fine (the wakeup is level-semantic, not a message).
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &b, 1);
}

int NetServer::ComputePollTimeoutMs(uint64_t now_ns) const {
  int timeout = 200;
  if (options_.request_timeout_ms > 0) {
    timeout = std::min(timeout, options_.request_timeout_ms / 4 + 1);
  }
  if (draining_) {
    uint64_t remaining =
        drain_deadline_ns_ > now_ns ? drain_deadline_ns_ - now_ns : 0;
    timeout = std::min(timeout,
                       static_cast<int>(remaining / 1000000) + 1);
    timeout = std::min(timeout, 50);
  }
  return timeout;
}

Status NetServer::LoopOnce() {
  uint64_t now = Stopwatch::NowNanos();
  // relaxed: pairs with the level-semantic store in BeginDrain.
  if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
    EnterDrain(now);
  }
  auto n = poller_->Wait(ComputePollTimeoutMs(now), &events_);
  if (!n.ok()) return n.status();
  m_->loop_polls.Inc();

  closed_in_batch_.clear();
  for (const PollEvent& event : events_) {
    if (std::find(closed_in_batch_.begin(), closed_in_batch_.end(),
                  event.fd) != closed_in_batch_.end()) {
      continue;
    }
    if (event.fd == listen_fd_) {
      AcceptReady();
      continue;
    }
    if (event.fd == wake_read_fd_) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
      m_->loop_wakeups.Inc();
      continue;
    }
    auto it = conns_.find(event.fd);
    if (it == conns_.end()) continue;
    HandleConnEvent(it->second.get(), event);
  }

  DrainCompletedQueue();
  now = Stopwatch::NowNanos();
  SweepTimeouts(now);
  // relaxed: pairs with the level-semantic store in BeginDrain.
  if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
    EnterDrain(now);
  }
  if (draining_) {
    if (DrainComplete()) {
      done_ = true;
    } else if (now >= drain_deadline_ns_) {
      LSG_LOG(Warning) << "drain deadline hit with " << pending_.size()
                    << " request(s) outstanding";
      for (const auto& [token, p] : pending_) {
        (void)token;
        admission_.Release(p.tenant);
        m_->req_orphaned.Inc();
      }
      pending_.clear();
      done_ = true;
    }
  }
  return Status::Ok();
}

void NetServer::AcceptReady() {
  LSG_OBS_SPAN("net.accept");
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error; poll again
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      m_->conn_refused.Inc();
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::unique_ptr<Conn> conn;
    if (!conn_pool_.empty()) {
      conn = std::move(conn_pool_.back());
      conn_pool_.pop_back();
      m_->conn_pool_reuse.Inc();
    } else {
      conn = std::make_unique<Conn>(options_.max_frame_bytes);
    }
    conn->Recycle(fd, next_conn_id_++, Stopwatch::NowNanos());
    if (!poller_->Add(fd, true, false).ok()) {
      ::close(fd);
      conn_pool_.push_back(std::move(conn));
      continue;
    }
    conns_by_id_[conn->id] = conn.get();
    conns_[fd] = std::move(conn);
    m_->conn_accepted.Inc();
    m_->conn_open.Set(static_cast<double>(conns_.size()));
  }
}

void NetServer::HandleConnEvent(Conn* conn, const PollEvent& event) {
  if (event.error) {
    CloseConn(conn, &m_->conn_error_closed);
    return;
  }
  if (event.writable) FlushConn(conn);
  if (conn->fd < 0) return;
  if (event.readable) ReadConn(conn);
}

void NetServer::ReadConn(Conn* conn) {
  char buf[16 * 1024];
  while (conn->fd >= 0) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_active_ns = Stopwatch::NowNanos();
      conn->fsm.Feed(std::string_view(buf, static_cast<size_t>(n)),
                     [this, conn](FrameEvent event, std::string_view payload) {
                       OnFrame(conn, event, payload);
                     });
      continue;
    }
    if (n == 0) {
      CloseConn(conn, nullptr);  // orderly remote close
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(conn, &m_->conn_error_closed);
    return;
  }
}

void NetServer::RespondError(Conn* conn, uint64_t id, NetError error,
                             std::string_view message) {
  m_->ErrorCounter(error).Inc();
  SendToConn(conn, EncodeError(id, error, message));
}

void NetServer::OnFrame(Conn* conn, FrameEvent event,
                        std::string_view payload) {
  if (conn->fd < 0) return;
  if (event == FrameEvent::kOversized) {
    RespondError(conn, 0, NetError::kFrameTooLarge,
                 StrFormat("request line exceeds %zu bytes",
                           options_.max_frame_bytes));
    return;
  }
  m_->req_received.Inc();
  uint64_t frame_ns = Stopwatch::NowNanos();

  NetError parse_error = NetError::kNone;
  StatusOr<NetRequest> parsed = [&] {
    obs::ScopedHistogramTimer timer(&m_->parse_ns);
    return ParseRequestFrame(payload, &parse_error);
  }();
  if (!parsed.ok()) {
    RespondError(conn, 0, parse_error, parsed.status().message());
    return;
  }

  if (parsed->ping) {
    m_->req_pings.Inc();
    SendToConn(conn, EncodePong(parsed->request.id));
    return;
  }
  if (draining_) {
    RespondError(conn, parsed->request.id, NetError::kDraining,
                 "server is draining");
    return;
  }
  NetError verdict = admission_.Admit(parsed->tenant, frame_ns);
  if (verdict != NetError::kNone) {
    RespondError(conn, parsed->request.id, verdict,
                 verdict == NetError::kOverQuota
                     ? StrFormat("tenant \"%s\" is over its request rate",
                                 parsed->tenant.c_str())
                     : "too many requests in flight");
    return;
  }

  DispatchOutcome outcome;
  {
    LSG_OBS_SPAN("net.dispatch");
    outcome = dispatcher_->Dispatch(parsed->request);
  }
  if (outcome.error != NetError::kNone) {
    admission_.Release(parsed->tenant);
    RespondError(conn, parsed->request.id, outcome.error, outcome.message);
    return;
  }

  uint64_t token = next_token_++;
  PendingRequest pending;
  pending.conn_id = conn->id;
  pending.client_id = parsed->request.id;
  pending.tenant = std::move(parsed->tenant);
  pending.frame_ns = frame_ns;
  if (options_.request_timeout_ms > 0) {
    pending.deadline_ns =
        frame_ns + static_cast<uint64_t>(options_.request_timeout_ms) *
                       1000000ull;
  }
  pending_.emplace(token, std::move(pending));
  ++conn->inflight;
  m_->req_dispatched.Inc();
  m_->req_inflight.Set(static_cast<double>(pending_.size()));
  m_->dispatch_ns.Record(Stopwatch::NowNanos() - frame_ns);

  {
    MutexLock lock(&feed_mu_);
    feed_.push_back(WaitItem{token, std::move(outcome.future)});
  }
  feed_cv_.NotifyOne();
}

void NetServer::SendToConn(Conn* conn, std::string data) {
  if (conn->fd < 0) return;
  conn->outbuf += data;
  if (conn->outbuf.size() - conn->out_off > options_.max_outbuf_bytes) {
    CloseConn(conn, &m_->conn_overflow_closed);
    return;
  }
  FlushConn(conn);
}

void NetServer::FlushConn(Conn* conn) {
  while (conn->fd >= 0 && conn->out_off < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                       conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn, &m_->conn_error_closed);
    return;
  }
  if (conn->fd < 0) return;
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (draining_ && conn->inflight == 0) {
      // Response flushed and nothing else owed: finish the goodbye.
      CloseConn(conn, nullptr);
      return;
    }
  }
  UpdateWriteInterest(conn);
}

void NetServer::UpdateWriteInterest(Conn* conn) {
  if (conn->fd < 0) return;
  bool want = conn->out_off < conn->outbuf.size();
  if (want == conn->want_write) return;
  if (poller_->Mod(conn->fd, true, want).ok()) conn->want_write = want;
}

void NetServer::CloseConn(Conn* conn, obs::Counter* reason) {
  if (conn->fd < 0) return;
  int fd = conn->fd;
  poller_->Del(fd);
  ::close(fd);
  conn->fd = -1;
  if (reason != nullptr) reason->Inc();
  m_->conn_closed.Inc();
  conns_by_id_.erase(conn->id);
  auto it = conns_.find(fd);
  if (it != conns_.end()) {
    conn_pool_.push_back(std::move(it->second));
    conns_.erase(it);
  }
  closed_in_batch_.push_back(fd);
  m_->conn_open.Set(static_cast<double>(conns_.size()));
}

void NetServer::DrainCompletedQueue() {
  std::deque<CompletedItem> batch;
  {
    MutexLock lock(&completed_mu_);
    batch.swap(completed_);
  }
  for (CompletedItem& item : batch) {
    auto it = pending_.find(item.token);
    if (it == pending_.end()) {
      // Already resolved on this side (request timeout); bookkeeping only.
      m_->req_late.Inc();
      continue;
    }
    PendingRequest pending = std::move(it->second);
    pending_.erase(it);
    FinishRequest(item.token, pending, std::move(item.response));
  }
  m_->req_inflight.Set(static_cast<double>(pending_.size()));
}

void NetServer::FinishRequest(uint64_t token, const PendingRequest& pending,
                              GenerationResponse response) {
  (void)token;
  admission_.Release(pending.tenant);
  m_->e2e_ns.Record(Stopwatch::NowNanos() - pending.frame_ns);

  auto it = conns_by_id_.find(pending.conn_id);
  if (it == conns_by_id_.end()) {
    // The connection died before its answer; the work still happened.
    m_->req_orphaned.Inc();
    return;
  }
  Conn* conn = it->second;
  if (conn->inflight > 0) --conn->inflight;

  if (!response.status.ok()) {
    NetError error = NetError::kInternal;
    if (response.status.code() == StatusCode::kInvalidArgument) {
      error = NetError::kBadRequest;
    } else if (response.status.code() == StatusCode::kFailedPrecondition) {
      error = NetError::kDraining;  // service shut down under the request
    }
    RespondError(conn, response.id, error, response.status.message());
    return;
  }
  m_->req_ok.Inc();
  SendToConn(conn, EncodeResponse(response, pending.tenant,
                                  options_.include_sql));
}

void NetServer::SweepTimeouts(uint64_t now_ns) {
  if (options_.idle_timeout_ms > 0) {
    uint64_t horizon =
        static_cast<uint64_t>(options_.idle_timeout_ms) * 1000000ull;
    std::vector<Conn*> idle;
    for (auto& [fd, conn] : conns_) {
      (void)fd;
      if (conn->inflight == 0 && conn->out_off == conn->outbuf.size() &&
          now_ns - conn->last_active_ns > horizon) {
        idle.push_back(conn.get());
      }
    }
    for (Conn* conn : idle) CloseConn(conn, &m_->conn_idle_closed);
  }

  if (options_.request_timeout_ms > 0) {
    std::vector<uint64_t> expired;
    for (const auto& [token, pending] : pending_) {
      if (pending.deadline_ns != 0 && now_ns > pending.deadline_ns) {
        expired.push_back(token);
      }
    }
    for (uint64_t token : expired) {
      auto it = pending_.find(token);
      PendingRequest pending = std::move(it->second);
      pending_.erase(it);
      admission_.Release(pending.tenant);
      auto cit = conns_by_id_.find(pending.conn_id);
      if (cit != conns_by_id_.end()) {
        Conn* conn = cit->second;
        if (conn->inflight > 0) --conn->inflight;
        RespondError(conn, pending.client_id, NetError::kTimeout,
                     "request deadline exceeded");
      } else {
        m_->req_timeout.Inc();  // conn already gone; count it anyway
      }
    }
    if (!expired.empty()) {
      m_->req_inflight.Set(static_cast<double>(pending_.size()));
    }
  }
}

void NetServer::EnterDrain(uint64_t now_ns) {
  draining_ = true;
  drain_deadline_ns_ =
      now_ns +
      static_cast<uint64_t>(std::max(options_.drain_timeout_ms, 1)) *
          1000000ull;
  if (listen_fd_ >= 0) {
    poller_->Del(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  LSG_LOG(Info) << "draining: " << pending_.size() << " in-flight, "
                << conns_.size() << " connection(s)";
  std::vector<Conn*> closable;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->inflight == 0 && conn->out_off == conn->outbuf.size()) {
      closable.push_back(conn.get());
    }
  }
  for (Conn* conn : closable) CloseConn(conn, nullptr);
}

bool NetServer::DrainComplete() const {
  if (!pending_.empty()) return false;
  for (const auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->out_off < conn->outbuf.size()) return false;
  }
  return true;
}

void NetServer::WaiterMain() {
  while (true) {
    WaitItem item;
    {
      MutexLock lock(&feed_mu_);
      while (!feed_closed_ && feed_.empty()) feed_cv_.Wait(feed_mu_);
      if (feed_.empty()) return;  // closed and drained
      item = std::move(feed_.front());
      feed_.pop_front();
    }
    CompletedItem done;
    done.token = item.token;
    try {
      done.response = item.future.get();
    } catch (...) {
      // A broken promise means the dispatcher dropped a request on the
      // floor; surface it as an internal error instead of hanging.
      done.response.status = Status::Internal("response promise broken");
    }
    {
      MutexLock lock(&completed_mu_);
      completed_.push_back(std::move(done));
    }
    WakeLoop();
  }
}

void NetServer::Teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  done_ = true;
  {
    MutexLock lock(&feed_mu_);
    feed_closed_ = true;
  }
  feed_cv_.NotifyAll();
  for (std::thread& t : waiters_) {
    if (t.joinable()) t.join();
  }
  // Whatever completed after the loop exited is orphaned by definition.
  DrainCompletedQueue();
  for (const auto& [token, pending] : pending_) {
    (void)token;
    admission_.Release(pending.tenant);
    m_->req_orphaned.Inc();
  }
  pending_.clear();
  std::vector<Conn*> open;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    open.push_back(conn.get());
  }
  for (Conn* conn : open) CloseConn(conn, nullptr);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The wakeup pipe deliberately outlives teardown: BeginDrain is allowed
  // from any thread (or a signal handler) for the whole object lifetime,
  // and its write(2) must never race a close here on the loop thread. The
  // destructor closes both ends once no caller can hold the object.
}

}  // namespace net
}  // namespace lsg
