#ifndef LEARNEDSQLGEN_NET_EVENT_LOOP_H_
#define LEARNEDSQLGEN_NET_EVENT_LOOP_H_

#include <memory>
#include <vector>

#include "common/status.h"

namespace lsg {
namespace net {

/// One readiness event from Poller::Wait.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP-class condition
};

/// Readiness-notification backend for the single-threaded event loop:
/// level-triggered epoll on Linux, poll(2) everywhere (and on Linux with
/// force_poll, which the tests use to cover both backends). The interface
/// is the intersection the server needs — add/re-arm/remove one fd and
/// wait — not a general reactor.
class Poller {
 public:
  virtual ~Poller() = default;

  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Mod(int fd, bool want_read, bool want_write) = 0;
  virtual void Del(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = indefinitely) and appends ready fds to
  /// `out` (cleared first). Returns the number of events, 0 on timeout.
  virtual StatusOr<int> Wait(int timeout_ms, std::vector<PollEvent>* out) = 0;

  virtual const char* name() const = 0;

  /// Best available backend (epoll when compiled on Linux, else poll);
  /// `force_poll` selects the portable backend unconditionally.
  static std::unique_ptr<Poller> Create(bool force_poll);
};

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_EVENT_LOOP_H_
