#ifndef LEARNEDSQLGEN_NET_FRAME_FSM_H_
#define LEARNEDSQLGEN_NET_FRAME_FSM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace lsg {
namespace net {

/// Events a FrameFsm emits while consuming bytes off a socket.
enum class FrameEvent {
  kFrame,      ///< a complete non-empty line (payload excludes CR/LF)
  kOversized,  ///< a line exceeded max_frame_bytes; payload is truncated
};

/// Table-driven line framer for the lsgserved wire protocol: one request
/// per LF-terminated line (a lone CR before the LF is stripped, so both
/// "\n" and "\r\n" clients work). Split reads are first-class — Feed may
/// be called with any byte granularity, including one byte at a time, and
/// frames spanning many reads accumulate in a pooled buffer that is
/// recycled between frames (capacity is kept, contents cleared).
///
/// The machine is a small state x input-class transition table in the
/// style of libxmpps' fsm.c rather than an ad-hoc scanner: every
/// (state, class) pair names its next state and action in one static
/// table, which makes the oversized-line resynchronisation path (swallow
/// bytes until the next LF, then report exactly one kOversized event)
/// obvious and exhaustively testable.
class FrameFsm {
 public:
  /// States (exposed for the unit tests and the analyzer-style table
  /// checks; user code only calls Feed).
  enum State : uint8_t {
    kIdle = 0,     ///< between frames, nothing buffered
    kAccum = 1,    ///< inside a line, bytes buffered
    kDiscard = 2,  ///< inside an oversized line, swallowing to next LF
    kNumStates = 3,
  };

  /// Input classes the table switches on.
  enum InputClass : uint8_t {
    kLf = 0,    ///< '\n' — frame terminator
    kCr = 1,    ///< '\r' — stripped when directly before LF
    kByte = 2,  ///< anything else
    kNumClasses = 3,
  };

  /// What a transition does before entering its next state.
  enum Action : uint8_t {
    kNone = 0,          ///< consume silently
    kAppend = 1,        ///< append byte to the frame buffer
    kEmit = 2,          ///< emit kFrame (empty lines are dropped)
    kEmitOversized = 3, ///< emit kOversized, reset the buffer
  };

  struct Transition {
    State next;
    Action action;
  };

  using Callback = std::function<void(FrameEvent, std::string_view payload)>;

  explicit FrameFsm(size_t max_frame_bytes = 64 * 1024)
      : max_frame_bytes_(max_frame_bytes == 0 ? 1 : max_frame_bytes) {}

  /// Consumes `data`, invoking `cb` once per completed frame in order.
  /// The payload view is valid only for the duration of the callback.
  void Feed(std::string_view data, const Callback& cb);

  /// Resets to kIdle, dropping any partial frame (connection reuse). The
  /// buffer's capacity is retained: this is the pooling hook.
  void Reset();

  State state() const { return state_; }
  size_t buffered_bytes() const { return buf_.size(); }
  size_t max_frame_bytes() const { return max_frame_bytes_; }

  /// The transition table itself; exposed so tests can verify totality
  /// (every state x class pair is defined and reaches kIdle via LF).
  static const Transition (&Table())[kNumStates][kNumClasses];

  static InputClass Classify(char c) {
    if (c == '\n') return kLf;
    if (c == '\r') return kCr;
    return kByte;
  }

 private:
  size_t max_frame_bytes_;
  State state_ = kIdle;
  std::string buf_;
  size_t pending_cr_ = 0;  ///< CRs seen but not yet committed to the buffer
};

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_FRAME_FSM_H_
