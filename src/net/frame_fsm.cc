#include "net/frame_fsm.h"

namespace lsg {
namespace net {

namespace {

using Transition = FrameFsm::Transition;

// The whole framer in one table (state x input class). Oversflow to
// kDiscard is the only transition not visible here: it happens when an
// kAppend action would push the buffer past max_frame_bytes.
constexpr Transition
    kTable[FrameFsm::kNumStates][FrameFsm::kNumClasses] = {
        // kIdle: LF = empty line (ignore), CR may start a line, byte starts
        // a line.
        {{FrameFsm::kIdle, FrameFsm::kEmit},
         {FrameFsm::kAccum, FrameFsm::kNone},
         {FrameFsm::kAccum, FrameFsm::kAppend}},
        // kAccum: LF terminates, CR is deferred (stripped iff before LF),
        // byte accumulates.
        {{FrameFsm::kIdle, FrameFsm::kEmit},
         {FrameFsm::kAccum, FrameFsm::kNone},
         {FrameFsm::kAccum, FrameFsm::kAppend}},
        // kDiscard: swallow everything until LF, then report the overflow.
        {{FrameFsm::kIdle, FrameFsm::kEmitOversized},
         {FrameFsm::kDiscard, FrameFsm::kNone},
         {FrameFsm::kDiscard, FrameFsm::kNone}},
};

}  // namespace

const Transition (&FrameFsm::Table())[FrameFsm::kNumStates]
                                     [FrameFsm::kNumClasses] {
  return kTable;
}

void FrameFsm::Feed(std::string_view data, const Callback& cb) {
  // Appends one byte, honoring the frame-size cap; returns false (and
  // switches to kDiscard) on overflow.
  auto append = [this](char c) {
    if (buf_.size() >= max_frame_bytes_) {
      state_ = kDiscard;
      return false;
    }
    buf_ += c;
    return true;
  };
  // Commits CRs that turned out to be payload (followed by a plain byte).
  auto flush_crs = [this, &append]() {
    while (pending_cr_ > 0) {
      --pending_cr_;
      if (!append('\r')) {
        pending_cr_ = 0;
        return false;
      }
    }
    return true;
  };

  for (char c : data) {
    const Transition& t = kTable[state_][Classify(c)];
    switch (t.action) {
      case kNone:
        if (state_ == kDiscard) break;
        if (Classify(c) == kCr) {
          ++pending_cr_;
        }
        break;
      case kAppend:
        if (!flush_crs() || !append(c)) continue;  // overflowed -> kDiscard
        break;
      case kEmit:
        // Exactly one CR directly before the LF is the line terminator's;
        // any earlier deferred CRs were payload.
        if (pending_cr_ > 0) --pending_cr_;
        if (!flush_crs()) continue;
        if (!buf_.empty()) cb(FrameEvent::kFrame, buf_);
        buf_.clear();
        pending_cr_ = 0;
        break;
      case kEmitOversized:
        cb(FrameEvent::kOversized, buf_);
        buf_.clear();
        pending_cr_ = 0;
        break;
    }
    state_ = t.next;
  }
}

void FrameFsm::Reset() {
  state_ = kIdle;
  buf_.clear();
  pending_cr_ = 0;
}

}  // namespace net
}  // namespace lsg
