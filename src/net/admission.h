#ifndef LEARNEDSQLGEN_NET_ADMISSION_H_
#define LEARNEDSQLGEN_NET_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "net/protocol.h"
#include "net/token_bucket.h"

namespace lsg {
namespace net {

/// Admission-control policy knobs. Rates are per tenant; inflight caps
/// bound requests dispatched into the service but not yet answered.
struct AdmissionOptions {
  double tenant_rate = 500.0;     ///< requests/second/tenant (<=0: unlimited)
  double tenant_burst = 1000.0;   ///< bucket depth per tenant
  int tenant_max_inflight = 64;   ///< per-tenant in-flight cap (<=0: unlimited)
  int max_inflight = 256;         ///< global in-flight cap (<=0: unlimited)
  size_t max_tenants = 4096;      ///< bound on tracked tenant states
};

/// Per-tenant token-bucket quotas plus in-flight caps, owned and driven by
/// the single-threaded event loop (no internal locking). Admit() charges
/// the tenant's bucket and takes an in-flight slot; Release() returns the
/// slot when the response is written (or the request times out). The
/// bucket token is intentionally not refunded on rejection further down
/// the pipeline (queue-full): a rejected request still consumed protocol
/// work, and refunding would let a flooding client retry at full rate.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  /// Admission verdict for one request from `tenant` at `now_ns`.
  /// kNone = admitted (caller owes a Release), kOverQuota, kOverInflight.
  NetError Admit(const std::string& tenant, uint64_t now_ns);

  /// Returns the in-flight slot taken by a successful Admit.
  void Release(const std::string& tenant);

  int inflight() const { return inflight_; }
  int tenant_inflight(const std::string& tenant) const;
  size_t tracked_tenants() const { return tenants_.size(); }
  const AdmissionOptions& options() const { return options_; }

 private:
  struct TenantState {
    TenantState(const AdmissionOptions& o, uint64_t now_ns)
        : bucket(o.tenant_rate, o.tenant_burst, now_ns) {}
    TokenBucket bucket;
    int inflight = 0;
  };

  TenantState* GetTenant(const std::string& tenant, uint64_t now_ns);

  AdmissionOptions options_;
  std::map<std::string, TenantState> tenants_;
  int inflight_ = 0;
};

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_ADMISSION_H_
