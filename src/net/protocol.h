#ifndef LEARNEDSQLGEN_NET_PROTOCOL_H_
#define LEARNEDSQLGEN_NET_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "service/generation_service.h"

namespace lsg {
namespace net {

/// Structured protocol error codes: every request outcome other than a
/// generated result maps onto exactly one of these, and the wire response
/// carries the stable snake_case name from NetErrorCode(). Admission
/// control and backpressure are protocol errors, never silent drops.
enum class NetError {
  kNone = 0,       ///< success
  kBadFrame,       ///< line was not a valid JSON request object
  kFrameTooLarge,  ///< line exceeded the frame-size cap
  kBadRequest,     ///< well-formed JSON, semantically invalid request
  kOverQuota,      ///< tenant token bucket empty (rate limit)
  kOverInflight,   ///< tenant or global in-flight cap reached
  kQueueFull,      ///< service queue full (backpressure fail-fast)
  kDraining,       ///< server is draining (SIGTERM), not accepting work
  kTimeout,        ///< request exceeded the server-side deadline
  kInternal,       ///< unexpected server-side failure
};

/// Stable wire name, e.g. "over_quota".
const char* NetErrorCode(NetError e);

/// One parsed request line. Wire format: a single JSON object per
/// LF-terminated line:
///
///   {"tenant": "alice", "id": 7, "count": 5, "batch": false,
///    "constraint": {"metric": "card", "kind": "range",
///                   "lo": 100, "hi": 900}}
///
/// Point constraints use {"kind": "point", "value": 500}. "metric" is
/// "card"|"cost". {"op": "ping"} short-circuits everything past framing:
/// the loop answers directly without touching admission or the service
/// (liveness probes and protocol-overhead benchmarking).
struct NetRequest {
  std::string tenant = "default";
  bool ping = false;
  GenerationRequest request;  ///< constraint, n, batch, id
};

/// Parses one frame into a NetRequest. On error the status message is the
/// human-readable detail for the response, and `*error_kind` is set to
/// kBadFrame (not a JSON object) or kBadRequest (semantically invalid).
StatusOr<NetRequest> ParseRequestFrame(std::string_view frame,
                                       NetError* error_kind);

/// Response encoders. Every response is one LF-terminated JSON object
/// with an "ok" bool and the echoed request "id"; errors carry
/// {"error": <code>, "message": ...}.
std::string EncodeResponse(const GenerationResponse& response,
                           std::string_view tenant, bool include_sql);
std::string EncodeError(uint64_t id, NetError error, std::string_view message);
std::string EncodePong(uint64_t id);

/// JSON string escaping shared by the encoders (quotes, backslashes,
/// control bytes as \u00XX).
void JsonEscapeTo(std::string_view s, std::string* out);

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_PROTOCOL_H_
