#ifndef LEARNEDSQLGEN_NET_TOKEN_BUCKET_H_
#define LEARNEDSQLGEN_NET_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

namespace lsg {
namespace net {

/// Classic token bucket: refills at `rate` tokens per second up to a cap
/// of `burst`, one TryAcquire per admitted request. Time is an explicit
/// monotonic nanosecond argument (Stopwatch::NowNanos in production, a
/// hand-advanced counter in tests) so the quota math is exactly unit
/// testable. Single-threaded by design: lsgserved's event loop owns all
/// buckets, so no atomics are needed.
class TokenBucket {
 public:
  /// `rate` <= 0 disables the bucket (every acquire succeeds).
  TokenBucket(double rate, double burst, uint64_t now_ns)
      : rate_(rate),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)),
        last_ns_(now_ns) {}

  /// Takes `cost` tokens if available. Refill is computed lazily from the
  /// elapsed time since the previous call, so idle tenants pay nothing.
  bool TryAcquire(uint64_t now_ns, double cost = 1.0) {
    if (rate_ <= 0.0) return true;
    Refill(now_ns);
    if (tokens_ + 1e-9 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Current token count after refilling to `now_ns` (diagnostics).
  double Peek(uint64_t now_ns) {
    if (rate_ <= 0.0) return burst_;
    Refill(now_ns);
    return tokens_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(uint64_t now_ns) {
    if (now_ns <= last_ns_) return;  // monotonic clock should prevent this
    double elapsed_s = static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ns_ = now_ns;
  }

  double rate_;
  double burst_;
  double tokens_;
  uint64_t last_ns_;
};

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_TOKEN_BUCKET_H_
