#ifndef LEARNEDSQLGEN_NET_NET_CLIENT_H_
#define LEARNEDSQLGEN_NET_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/json.h"

namespace lsg {
namespace net {

/// Small blocking TCP client for the lsgserved line protocol, used by
/// lsgclient, the loopback tests, the load driver and the protocol
/// fuzzer. Not thread-safe; one instance per connection.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to host:port; `timeout_ms` bounds reads (and writes where
  /// the platform honors SO_SNDTIMEO).
  static StatusOr<BlockingClient> Connect(const std::string& host, int port,
                                          int timeout_ms = 30000);

  /// Sends raw bytes (no framing added).
  Status Send(std::string_view data);
  /// Sends one frame: `line` + '\n'.
  Status SendLine(std::string_view line);
  /// Reads one LF-terminated line (LF stripped). Times out per Connect.
  StatusOr<std::string> ReadLine();
  /// SendLine + ReadLine + JSON-parse, the common request/response round.
  StatusOr<obs::JsonValue> Call(std::string_view request_line);

  /// Half-close: no more writes (server sees EOF after its responses).
  void CloseWrite();
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string rdbuf_;
};

/// Builds a generation request line for tenant/constraint shorthand used
/// by lsgclient and the load driver. `constraint_json` must be the JSON
/// object for the "constraint" member.
std::string BuildRequestLine(std::string_view tenant, uint64_t id,
                             std::string_view constraint_json, int count,
                             bool batch);

struct LoadDriverOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int requests_per_connection = 100;
  int pipeline_depth = 1;  ///< frames in flight per connection
  bool ping_only = false;  ///< measure pure protocol overhead, skip service
  std::string tenant = "bench";
  int tenants = 1;  ///< >1 spreads load over tenant-0..tenant-{n-1}
  std::string constraint_json =
      "{\"metric\": \"card\", \"kind\": \"range\", \"lo\": 1, "
      "\"hi\": 1000000}";
  int count = 1;  ///< queries per generation request
  int timeout_ms = 120000;
};

struct LoadDriverReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  std::map<std::string, uint64_t> errors_by_code;
  double wall_seconds = 0.0;
  double req_per_second = 0.0;
  double p50_ms = 0.0;  ///< client-observed round-trip latency
  double p99_ms = 0.0;

  std::string ToString() const;
};

/// Concurrent loopback load driver: `connections` client threads each
/// send `requests_per_connection` requests (pipelined up to
/// pipeline_depth) and verify every frame gets exactly one parseable
/// response. Errors (over_quota, queue_full, ...) are tallied, not
/// failures — the structured-error path is part of what's being driven.
StatusOr<LoadDriverReport> RunLoadDriver(const LoadDriverOptions& options);

struct NetFuzzOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  uint64_t seed = 7;
  int rounds = 64;    ///< connection lifecycles per client thread
  int clients = 4;    ///< concurrent misbehaving clients
  size_t max_frame_bytes = 64 * 1024;  ///< must match the server's cap
  bool verbose = false;
};

struct NetFuzzReport {
  uint64_t connections = 0;
  uint64_t frames_sent = 0;
  uint64_t well_formed_sent = 0;
  uint64_t responses = 0;
  uint64_t parse_failures = 0;   ///< response lines that were not JSON
  uint64_t early_disconnects = 0;

  std::string ToString() const;
};

/// Randomized protocol fuzzer: each client round picks among valid
/// requests, malformed JSON, binary garbage, oversized lines, deeply
/// nested documents, split (slow-loris) writes and mid-request
/// disconnects. Invariants checked (Internal status on violation):
///   - every response line the server sends parses as a JSON object with
///     an "ok" member
///   - the server survives: a fresh connection's ping gets a pong after
///     every round
/// Run it against an ASan/TSan build to turn memory bugs into failures.
StatusOr<NetFuzzReport> FuzzNetProtocol(const NetFuzzOptions& options);

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_NET_CLIENT_H_
