#include "net/protocol.h"

#include <cmath>

#include "common/string_util.h"
#include "obs/json.h"

namespace lsg {
namespace net {

const char* NetErrorCode(NetError e) {
  switch (e) {
    case NetError::kNone: return "ok";
    case NetError::kBadFrame: return "bad_frame";
    case NetError::kFrameTooLarge: return "frame_too_large";
    case NetError::kBadRequest: return "bad_request";
    case NetError::kOverQuota: return "over_quota";
    case NetError::kOverInflight: return "over_inflight";
    case NetError::kQueueFull: return "queue_full";
    case NetError::kDraining: return "draining";
    case NetError::kTimeout: return "timeout";
    case NetError::kInternal: return "internal";
  }
  return "internal";
}

namespace {

constexpr int kMaxCount = 1000;
constexpr size_t kMaxTenantBytes = 64;

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

Status BadRequest(NetError* kind, std::string msg) {
  *kind = NetError::kBadRequest;
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace

StatusOr<NetRequest> ParseRequestFrame(std::string_view frame,
                                       NetError* error_kind) {
  *error_kind = NetError::kBadFrame;
  auto doc = obs::JsonParse(frame);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  NetRequest out;
  if (const obs::JsonValue* t = doc->Find("tenant")) {
    if (!t->is_string() || t->str.empty()) {
      return BadRequest(error_kind, "\"tenant\" must be a non-empty string");
    }
    if (t->str.size() > kMaxTenantBytes) {
      return BadRequest(error_kind, "\"tenant\" name too long");
    }
    out.tenant = t->str;
  }
  out.request.id = static_cast<uint64_t>(doc->NumberOr("id", 0));

  std::string op = doc->StringOr("op", "generate");
  if (op == "ping") {
    out.ping = true;
    return out;
  }
  if (op != "generate") {
    return BadRequest(error_kind, StrFormat("unknown op \"%s\"", op.c_str()));
  }

  double count = doc->NumberOr("count", 1);
  if (!(count >= 1) || count > kMaxCount || count != std::floor(count)) {
    return BadRequest(error_kind,
                      StrFormat("\"count\" must be an integer in [1, %d]",
                                kMaxCount));
  }
  out.request.n = static_cast<int>(count);
  if (const obs::JsonValue* b = doc->Find("batch")) {
    if (b->kind != obs::JsonValue::Kind::kBool) {
      return BadRequest(error_kind, "\"batch\" must be a boolean");
    }
    out.request.batch = b->b;
  }

  const obs::JsonValue* c = doc->Find("constraint");
  if (c == nullptr || !c->is_object()) {
    return BadRequest(error_kind, "missing \"constraint\" object");
  }
  std::string metric_name = c->StringOr("metric", "");
  ConstraintMetric metric;
  if (metric_name == "card") {
    metric = ConstraintMetric::kCardinality;
  } else if (metric_name == "cost") {
    metric = ConstraintMetric::kCost;
  } else {
    return BadRequest(error_kind,
                      "constraint \"metric\" must be \"card\" or \"cost\"");
  }
  std::string kind = c->StringOr("kind", "");
  if (kind == "point") {
    double value = c->NumberOr("value", -1.0);
    if (!FiniteNonNegative(value)) {
      return BadRequest(error_kind,
                        "point constraint needs a non-negative \"value\"");
    }
    out.request.constraint = Constraint::Point(metric, value);
    double tol = c->NumberOr("tolerance", -1.0);
    if (tol >= 0.0) out.request.constraint.point_tolerance = tol;
  } else if (kind == "range") {
    double lo = c->NumberOr("lo", -1.0);
    double hi = c->NumberOr("hi", -1.0);
    if (!FiniteNonNegative(lo) || !FiniteNonNegative(hi) || lo > hi) {
      return BadRequest(error_kind,
                        "range constraint needs 0 <= \"lo\" <= \"hi\"");
    }
    out.request.constraint = Constraint::Range(metric, lo, hi);
  } else {
    return BadRequest(error_kind,
                      "constraint \"kind\" must be \"point\" or \"range\"");
  }
  *error_kind = NetError::kNone;
  return out;
}

void JsonEscapeTo(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

std::string EncodeResponse(const GenerationResponse& response,
                           std::string_view tenant, bool include_sql) {
  std::string out = StrFormat(
      "{\"id\": %llu, \"ok\": true, \"tenant\": \"",
      static_cast<unsigned long long>(response.id));
  JsonEscapeTo(tenant, &out);
  out += StrFormat(
      "\", \"satisfied\": %d, \"attempts\": %d, "
      "\"cache_hit\": %s, \"worker\": %d, \"seconds\": %s",
      response.report.satisfied, response.report.attempts,
      response.cache_hit ? "true" : "false", response.worker,
      FormatDouble(response.queue_seconds + response.train_seconds +
                   response.generate_seconds)
          .c_str());
  if (include_sql) {
    out += ", \"queries\": [";
    for (size_t i = 0; i < response.report.queries.size(); ++i) {
      const GeneratedQuery& q = response.report.queries[i];
      if (i > 0) out += ", ";
      out += StrFormat("{\"metric\": %s, \"sql\": \"",
                       FormatDouble(q.metric).c_str());
      JsonEscapeTo(q.sql, &out);
      out += "\"}";
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

std::string EncodeError(uint64_t id, NetError error,
                        std::string_view message) {
  std::string out =
      StrFormat("{\"id\": %llu, \"ok\": false, \"error\": \"%s\", "
                "\"message\": \"",
                static_cast<unsigned long long>(id), NetErrorCode(error));
  JsonEscapeTo(message, &out);
  out += "\"}\n";
  return out;
}

std::string EncodePong(uint64_t id) {
  return StrFormat("{\"id\": %llu, \"ok\": true, \"pong\": true}\n",
                   static_cast<unsigned long long>(id));
}

}  // namespace net
}  // namespace lsg
