#ifndef LEARNEDSQLGEN_NET_SERVER_H_
#define LEARNEDSQLGEN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/admission.h"
#include "net/event_loop.h"
#include "net/frame_fsm.h"
#include "net/protocol.h"
#include "obs/metrics_registry.h"
#include "service/generation_service.h"

namespace lsg {
namespace net {

/// Outcome of handing one request to the backend: either a future that
/// will become ready with the response, or a structured rejection.
struct DispatchOutcome {
  NetError error = NetError::kNone;
  std::string message;                        ///< detail for error responses
  std::future<GenerationResponse> future;     ///< valid when error == kNone
};

/// The server's view of a backend. GenerationService is the production
/// implementation (ServiceDispatcher below); tests substitute a manual
/// dispatcher to script queue-full, slow-completion and drain scenarios
/// deterministically.
class RequestDispatcher {
 public:
  virtual ~RequestDispatcher() = default;
  virtual DispatchOutcome Dispatch(GenerationRequest request) = 0;
};

/// Adapts GenerationService::TrySubmit: the fail-fast submit keeps the
/// event loop non-blocking, and its rejection reasons map onto protocol
/// errors (queue-full -> kQueueFull, shut-down -> kDraining).
class ServiceDispatcher : public RequestDispatcher {
 public:
  explicit ServiceDispatcher(GenerationService* service)
      : service_(service) {}
  DispatchOutcome Dispatch(GenerationRequest request) override;

 private:
  GenerationService* service_;
};

struct NetServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port back via port()
  int backlog = 128;
  int max_connections = 256;       ///< accepted sockets; excess are refused
  size_t max_frame_bytes = 64 * 1024;
  size_t max_outbuf_bytes = 4 * 1024 * 1024;  ///< slow-reader cutoff
  int idle_timeout_ms = 30000;     ///< close idle connections (<=0: never)
  int request_timeout_ms = 0;      ///< per-request deadline (<=0: none)
  int drain_timeout_ms = 10000;    ///< max graceful-drain wait
  bool include_sql = true;         ///< put generated SQL in responses
  bool force_poll = false;         ///< use poll(2) even where epoll exists
  int completion_waiters = 4;      ///< threads bridging futures -> loop
  AdmissionOptions admission;
  /// Registry for the net.* metrics; defaults to a private one. Point it
  /// at the service's registry to snapshot net.* and service.* together.
  obs::MetricsRegistry* metrics_registry = nullptr;
};

/// Single-threaded epoll/poll event-loop front end for the generation
/// service, speaking the line-delimited JSON protocol of net/protocol.h.
///
/// Loop-thread discipline: all sockets, connection state, the frame FSMs
/// and the admission controller are owned by the loop thread. Service
/// workers fulfill response futures on their own threads; a small pool of
/// completion waiters parks on those futures and forwards finished
/// responses through a mutex-guarded queue plus a wakeup pipe, so the
/// loop never blocks on a future and a worker never touches a socket.
///
/// Graceful drain (BeginDrain, async-signal-safe): stop accepting, answer
/// new requests with the `draining` error, finish writing every in-flight
/// response, then exit the loop. Forced exit after drain_timeout_ms
/// counts abandoned requests in net.req.orphaned — accounting stays
/// exact either way: net.req.received == responses written + orphaned.
class NetServer {
 public:
  /// Binds and listens (so port() is valid immediately) but does not
  /// serve until Run or Start. `dispatcher` must outlive the server and
  /// must keep fulfilling futures until Join/Run returns.
  static StatusOr<std::unique_ptr<NetServer>> Create(
      RequestDispatcher* dispatcher, const NetServerOptions& options);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Runs the event loop on the calling thread until drain completes.
  /// Performs full teardown (joins completion waiters, closes sockets)
  /// before returning.
  Status Run();

  /// Runs the loop on a background thread; pair with Join().
  Status Start();
  Status Join();

  /// Begins graceful drain. Thread- and async-signal-safe (an atomic
  /// store plus one write(2) to the wakeup pipe); idempotent.
  void BeginDrain();

  int port() const { return port_; }
  const char* poller_name() const { return poller_->name(); }
  const NetServerOptions& options() const { return options_; }
  obs::MetricsRegistry& registry() { return *registry_; }

  /// Loop-thread-only view used by the in-process tools; safe to call
  /// from other threads only after Run/Join returned.
  size_t open_connections() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;  ///< generation id; completions reference conns by id
    FrameFsm fsm;
    std::string outbuf;
    size_t out_off = 0;
    uint64_t last_active_ns = 0;
    int inflight = 0;  ///< dispatched requests still owing a response
    bool want_write = false;

    explicit Conn(size_t max_frame) : fsm(max_frame) {}
    void Recycle(int new_fd, uint64_t new_id, uint64_t now_ns);
  };

  struct PendingRequest {
    uint64_t conn_id = 0;
    uint64_t client_id = 0;
    std::string tenant;
    uint64_t frame_ns = 0;     ///< frame-complete timestamp (e2e latency)
    uint64_t deadline_ns = 0;  ///< 0 = no deadline
  };

  struct WaitItem {
    uint64_t token = 0;
    std::future<GenerationResponse> future;
  };

  struct CompletedItem {
    uint64_t token = 0;
    GenerationResponse response;
  };

  NetServer(RequestDispatcher* dispatcher, const NetServerOptions& options);

  Status Listen();
  Status LoopOnce();      ///< one poll + event batch; sets done_ when over
  void AcceptReady();
  void HandleConnEvent(Conn* conn, const PollEvent& event);
  void ReadConn(Conn* conn);
  void OnFrame(Conn* conn, FrameEvent event, std::string_view payload);
  void RespondError(Conn* conn, uint64_t id, NetError error,
                    std::string_view message);
  void SendToConn(Conn* conn, std::string data);
  void FlushConn(Conn* conn);
  void UpdateWriteInterest(Conn* conn);
  void CloseConn(Conn* conn, obs::Counter* reason_counter);
  void DrainCompletedQueue();
  void FinishRequest(uint64_t token, const PendingRequest& pending,
                     GenerationResponse response);
  void SweepTimeouts(uint64_t now_ns);
  void EnterDrain(uint64_t now_ns);
  bool DrainComplete() const;
  int ComputePollTimeoutMs(uint64_t now_ns) const;
  void WakeLoop();
  void WaiterMain();
  void Teardown();

  RequestDispatcher* dispatcher_;
  NetServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  std::unique_ptr<Poller> poller_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // Loop-thread state.
  std::map<int, std::unique_ptr<Conn>> conns_;          // by fd
  std::map<uint64_t, Conn*> conns_by_id_;
  std::vector<std::unique_ptr<Conn>> conn_pool_;
  std::map<uint64_t, PendingRequest> pending_;          // by token
  AdmissionController admission_;
  std::vector<PollEvent> events_;
  std::vector<int> closed_in_batch_;  ///< fds closed while handling a batch
  uint64_t next_conn_id_ = 1;
  uint64_t next_token_ = 1;
  bool draining_ = false;
  uint64_t drain_deadline_ns_ = 0;
  bool done_ = false;
  bool torn_down_ = false;

  // Cross-thread state. Lock order: feed_mu_ and completed_mu_ are leaf
  // locks (nothing else is acquired while holding either), so the loop
  // thread and the waiter pool can never deadlock through them.
  std::atomic<bool> drain_requested_{false};
  Mutex feed_mu_;
  CondVar feed_cv_;
  std::deque<WaitItem> feed_ LSG_GUARDED_BY(feed_mu_);
  bool feed_closed_ LSG_GUARDED_BY(feed_mu_) = false;
  Mutex completed_mu_;
  std::deque<CompletedItem> completed_ LSG_GUARDED_BY(completed_mu_);
  std::vector<std::thread> waiters_;
  std::thread loop_thread_;
  Status loop_status_;

  // Cached metric handles (all under net.*; see README "Network serving").
  struct Metrics;
  std::unique_ptr<Metrics> m_;
};

}  // namespace net
}  // namespace lsg

#endif  // LEARNEDSQLGEN_NET_SERVER_H_
