#include "catalog/schema.h"

#include "common/string_util.h"

namespace lsg {

Status TableSchema::AddColumn(ColumnSchema column) {
  if (FindColumn(column.name) >= 0) {
    return Status::AlreadyExists("duplicate column " + column.name +
                                 " in table " + name_);
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

int TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int TableSchema::PrimaryKeyColumn() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].is_primary_key) return static_cast<int>(i);
  }
  return -1;
}

std::string TableSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (const ColumnSchema& c : columns_) {
    std::string s = c.name;
    s += " ";
    s += DataTypeName(c.type);
    if (c.is_primary_key) s += " PK";
    cols.push_back(std::move(s));
  }
  return name_ + "(" + Join(cols, ", ") + ")";
}

}  // namespace lsg
