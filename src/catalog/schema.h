#ifndef LEARNEDSQLGEN_CATALOG_SCHEMA_H_
#define LEARNEDSQLGEN_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/data_type.h"
#include "common/status.h"

namespace lsg {

/// Schema of one column.
struct ColumnSchema {
  std::string name;
  DataType type = DataType::kInt64;
  /// True if this column is (part of) the table's primary key.
  bool is_primary_key = false;
  /// True if NULLs may appear.
  bool nullable = false;
};

/// Schema of one table: a name plus an ordered list of columns.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a column. Returns AlreadyExists on duplicate names.
  Status AddColumn(ColumnSchema column);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSchema& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSchema>& columns() const { return columns_; }

  /// Index of the column with the given name, or -1.
  int FindColumn(const std::string& name) const;

  /// Index of the primary-key column, or -1 if none declared.
  int PrimaryKeyColumn() const;

  /// "name(col1 TYPE, col2 TYPE, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ColumnSchema> columns_;
};

/// A primary-key/foreign-key edge between two tables. Per the paper's
/// "Meaningful Checking" rule, two columns can be joined only if they have a
/// PK-FK relation or a user-specified join relation; the FSM masks all other
/// join attempts.
struct ForeignKey {
  std::string from_table;   ///< referencing (fact) table
  std::string from_column;  ///< FK column
  std::string to_table;     ///< referenced (dimension) table
  std::string to_column;    ///< PK column
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CATALOG_SCHEMA_H_
