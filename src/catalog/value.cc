#include "catalog/value.h"

#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(as_int());
  LSG_CHECK(is_double());
  return as_double();
}

namespace {
// Rank used only to give a total order across incompatible types.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(*this);
  int rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (is_null()) return 0;  // both NULL
  if (is_numeric()) {
    // Compare exactly when both are ints, avoiding double rounding.
    if (is_int() && other.is_int()) {
      int64_t a = as_int();
      int64_t b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsNumber();
    double b = other.AsNumber();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const std::string& a = as_string();
  const std::string& b = other.as_string();
  int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(as_int()));
  if (is_double()) return FormatDouble(as_double());
  // Escape single quotes by doubling, per SQL.
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(as_int()));
  if (is_double()) return FormatDouble(as_double());
  return as_string();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_int()) {
    // Hash ints through their double image so that 1 and 1.0 collide
    // (they compare equal).
    double d = static_cast<double>(as_int());
    return std::hash<double>{}(d);
  }
  if (is_double()) return std::hash<double>{}(as_double());
  return std::hash<std::string>{}(as_string());
}

}  // namespace lsg
