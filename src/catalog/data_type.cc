#include "catalog/data_type.h"

namespace lsg {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kCategorical:
      return "CATEGORICAL";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

bool AreComparable(DataType a, DataType b) {
  if (IsNumeric(a) && IsNumeric(b)) return true;
  return a == b;
}

}  // namespace lsg
