#include "catalog/catalog.h"

#include <algorithm>

namespace lsg {

Status Catalog::AddTable(TableSchema schema) {
  if (FindTable(schema.name()) >= 0) {
    return Status::AlreadyExists("table " + schema.name() + " already exists");
  }
  tables_.push_back(std::move(schema));
  return Status::Ok();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  int from = FindTable(fk.from_table);
  int to = FindTable(fk.to_table);
  if (from < 0 || to < 0) {
    return Status::NotFound("foreign key references unknown table: " +
                            fk.from_table + " -> " + fk.to_table);
  }
  int from_col = tables_[from].FindColumn(fk.from_column);
  int to_col = tables_[to].FindColumn(fk.to_column);
  if (from_col < 0 || to_col < 0) {
    return Status::NotFound("foreign key references unknown column: " +
                            fk.from_table + "." + fk.from_column + " -> " +
                            fk.to_table + "." + fk.to_column);
  }
  DataType a = tables_[from].column(from_col).type;
  DataType b = tables_[to].column(to_col).type;
  if (!AreComparable(a, b)) {
    return Status::InvalidArgument(
        "foreign key joins incomparable types: " + fk.from_table + "." +
        fk.from_column + " -> " + fk.to_table + "." + fk.to_column);
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::Ok();
}

int Catalog::FindTable(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<ForeignKey> Catalog::JoinEdges(const std::string& a,
                                           const std::string& b) const {
  std::vector<ForeignKey> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if ((fk.from_table == a && fk.to_table == b) ||
        (fk.from_table == b && fk.to_table == a)) {
      out.push_back(fk);
    }
  }
  return out;
}

std::vector<std::string> Catalog::JoinableTables(
    const std::string& table) const {
  std::vector<std::string> out;
  auto add_unique = [&out](const std::string& t) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  };
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.from_table == table) add_unique(fk.to_table);
    if (fk.to_table == table) add_unique(fk.from_table);
  }
  return out;
}

bool Catalog::AreJoinable(const std::string& a, const std::string& b) const {
  for (const ForeignKey& fk : foreign_keys_) {
    if ((fk.from_table == a && fk.to_table == b) ||
        (fk.from_table == b && fk.to_table == a)) {
      return true;
    }
  }
  return false;
}

}  // namespace lsg
