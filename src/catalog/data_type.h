#ifndef LEARNEDSQLGEN_CATALOG_DATA_TYPE_H_
#define LEARNEDSQLGEN_CATALOG_DATA_TYPE_H_

#include <string>

namespace lsg {

/// Column data types supported by the engine. The paper distinguishes
/// numerical, categorical and string data: numerical columns get value
/// sampling (k values), categorical columns enumerate all distinct values,
/// and string columns get sampled values with the restricted operator set
/// {=, <, >}.
enum class DataType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  /// Low-cardinality string/int domain; all distinct values enter the
  /// action space directly (paper §4.1, "Gender"-style attributes).
  kCategorical = 3,
};

/// Human-readable type name ("INT64", "DOUBLE", "STRING", "CATEGORICAL").
const char* DataTypeName(DataType type);

/// True for types on which SUM/AVG/MIN/MAX aggregation and the full operator
/// set {<, >, =, <=, >=} are allowed (paper §5 semantic checking).
bool IsNumeric(DataType type);

/// True if two columns of these types may be compared / joined
/// (paper §5: "columns with different datatypes cannot be joined").
bool AreComparable(DataType a, DataType b);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CATALOG_DATA_TYPE_H_
