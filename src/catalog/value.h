#ifndef LEARNEDSQLGEN_CATALOG_VALUE_H_
#define LEARNEDSQLGEN_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/data_type.h"

namespace lsg {

/// A single cell value. NULL is represented by the monostate alternative.
/// Categorical values are stored as strings.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view of the value: ints widen to double. Requires is_numeric().
  double AsNumber() const;

  /// Three-way comparison: negative / zero / positive like strcmp.
  /// NULLs sort first; cross-type numeric comparisons widen to double;
  /// comparing a number to a string compares type ranks (stable but
  /// arbitrary) — the FSM prevents such comparisons from being generated.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Renders the value as a SQL literal (strings quoted and escaped).
  std::string ToSqlLiteral() const;

  /// Debug rendering (NULL shown as "NULL", strings unquoted).
  std::string ToString() const;

  /// Stable hash for hash joins / grouping.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// Hash functor for containers keyed on Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CATALOG_VALUE_H_
