#ifndef LEARNEDSQLGEN_CATALOG_CATALOG_H_
#define LEARNEDSQLGEN_CATALOG_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace lsg {

/// Schema-level catalog: table schemas plus the PK-FK join graph.
/// The data itself lives in storage::Table / Database.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table schema. Returns AlreadyExists on duplicate names.
  Status AddTable(TableSchema schema);

  /// Registers a PK-FK edge. Both endpoints must exist and be comparable.
  Status AddForeignKey(ForeignKey fk);

  size_t num_tables() const { return tables_.size(); }
  const TableSchema& table(size_t i) const { return tables_[i]; }
  const std::vector<TableSchema>& tables() const { return tables_; }

  /// Index of the table with the given name, or -1.
  int FindTable(const std::string& name) const;

  /// All registered FK edges.
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Returns the FK edges connecting `a` and `b` in either direction.
  std::vector<ForeignKey> JoinEdges(const std::string& a,
                                    const std::string& b) const;

  /// Tables joinable with `table` via at least one FK edge.
  std::vector<std::string> JoinableTables(const std::string& table) const;

  /// True if some FK edge connects the two tables (either direction).
  bool AreJoinable(const std::string& a, const std::string& b) const;

 private:
  std::vector<TableSchema> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CATALOG_CATALOG_H_
