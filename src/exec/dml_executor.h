#ifndef LEARNEDSQLGEN_EXEC_DML_EXECUTOR_H_
#define LEARNEDSQLGEN_EXEC_DML_EXECUTOR_H_

#include "exec/executor.h"

namespace lsg {

/// Dry-run DML semantics: computes the number of rows an INSERT/UPDATE/
/// DELETE would affect without mutating the database. The generation
/// environment treats affected-row count as the "cardinality" of a DML
/// query, matching how the paper's constraints extend to insert/update/
/// delete (§5, Figure 11).
class DmlExecutor {
 public:
  explicit DmlExecutor(const Database* db) : exec_(db) {}

  /// Affected-row count for a DML ast; InvalidArgument for SELECT.
  StatusOr<uint64_t> AffectedRows(const QueryAst& ast) const;

  /// Applies an INSERT (VALUES form) for real — used by tests that verify
  /// dry-run counts against actual mutation on a scratch copy.
  Status ApplyInsert(Database* db, const QueryAst& ast) const;

  /// Applies an UPDATE for real: every row matching the WHERE gets
  /// set_column overwritten with set_value. Returns the number of rows
  /// changed. `db` must be the database this executor reads from.
  StatusOr<uint64_t> ApplyUpdate(Database* db, const QueryAst& ast) const;

  /// Applies a DELETE for real, removing every matching row. Returns the
  /// number of rows removed.
  StatusOr<uint64_t> ApplyDelete(Database* db, const QueryAst& ast) const;

  /// Applies any DML statement for real (INSERT VALUES / UPDATE / DELETE),
  /// returning the number of affected rows. INSERT..SELECT is rejected as
  /// Unimplemented (applying it would require full-row projection).
  StatusOr<uint64_t> Apply(Database* db, const QueryAst& ast) const;

 private:
  Executor exec_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_EXEC_DML_EXECUTOR_H_
