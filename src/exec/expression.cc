#include "exec/expression.h"

#include "common/logging.h"

namespace lsg {

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos;  // position after the last '%'
  size_t star_t = 0;                  // text position to resume from
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = ++p;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool CompareValues(const Value& a, CompareOp op, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kNumOps:
      break;
  }
  return false;
}

bool CombinePredicates(const std::vector<bool>& preds,
                       const std::vector<BoolConn>& conns) {
  if (preds.empty()) return true;
  LSG_DCHECK(conns.size() + 1 == preds.size());
  // Evaluate AND-runs first, then OR them together.
  bool or_acc = false;
  bool and_acc = preds[0];
  for (size_t i = 0; i < conns.size(); ++i) {
    if (conns[i] == BoolConn::kAnd) {
      and_acc = and_acc && preds[i + 1];
    } else {
      or_acc = or_acc || and_acc;
      and_acc = preds[i + 1];
    }
  }
  return or_acc || and_acc;
}

double CombineSelectivities(const std::vector<double>& sels,
                            const std::vector<BoolConn>& conns) {
  if (sels.empty()) return 1.0;
  LSG_DCHECK(conns.size() + 1 == sels.size());
  double or_acc = 0.0;
  bool have_or = false;
  double and_acc = sels[0];
  auto fold_or = [&](double v) {
    if (!have_or) {
      or_acc = v;
      have_or = true;
    } else {
      or_acc = or_acc + v - or_acc * v;  // inclusion-exclusion
    }
  };
  for (size_t i = 0; i < conns.size(); ++i) {
    if (conns[i] == BoolConn::kAnd) {
      and_acc *= sels[i + 1];  // independence
    } else {
      fold_or(and_acc);
      and_acc = sels[i + 1];
    }
  }
  fold_or(and_acc);
  if (or_acc < 0.0) or_acc = 0.0;
  if (or_acc > 1.0) or_acc = 1.0;
  return or_acc;
}

Value AggregateValues(AggFunc agg, const std::vector<Value>& values) {
  if (agg == AggFunc::kCount) {
    int64_t n = 0;
    for (const Value& v : values) {
      if (!v.is_null()) ++n;
    }
    return Value(n);
  }
  bool any = false;
  double sum = 0.0;
  Value best;
  int64_t n = 0;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    if (!any) {
      best = v;
      any = true;
    } else {
      if (agg == AggFunc::kMax && v.Compare(best) > 0) best = v;
      if (agg == AggFunc::kMin && v.Compare(best) < 0) best = v;
    }
    if (v.is_numeric()) {
      sum += v.AsNumber();
      ++n;
    }
  }
  if (!any) return Value::Null();
  switch (agg) {
    case AggFunc::kMax:
    case AggFunc::kMin:
      return best;
    case AggFunc::kSum:
      return Value(sum);
    case AggFunc::kAvg:
      return n > 0 ? Value(sum / static_cast<double>(n)) : Value::Null();
    default:
      return Value::Null();
  }
}

std::string GroupKeyOf(const std::vector<Value>& vals) {
  std::string key;
  for (const Value& v : vals) {
    key += v.ToSqlLiteral();
    key += '\x1f';
  }
  return key;
}

}  // namespace lsg
