#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/expression.h"
#include "obs/metrics_registry.h"

namespace lsg {

Executor::Executor(const Database* db, uint64_t max_intermediate_tuples)
    : db_(db), max_intermediate_tuples_(max_intermediate_tuples) {
  LSG_CHECK(db != nullptr);
}

Value Executor::TupleValue(const TupleSet& ts, size_t tuple,
                           const ColumnRef& col) const {
  const size_t stride = ts.tables.size();
  for (size_t pos = 0; pos < stride; ++pos) {
    if (ts.tables[pos] == col.table_idx) {
      uint32_t row = ts.flat[tuple * stride + pos];
      return db_->tables()[col.table_idx].GetValue(row, col.column_idx);
    }
  }
  return Value::Null();  // column not in scope; FSM prevents this
}

StatusOr<Executor::TupleSet> Executor::BuildJoin(const SelectQuery& q,
                                                 ExecStats* stats) const {
  if (q.tables.empty()) {
    return Status::InvalidArgument("SELECT without FROM tables");
  }
  const Catalog& cat = db_->catalog();
  TupleSet ts;
  ts.tables.push_back(q.tables[0]);
  const Table& base = db_->tables()[q.tables[0]];
  ts.count = base.num_rows();
  ts.flat.resize(ts.count);
  for (size_t r = 0; r < ts.count; ++r) ts.flat[r] = static_cast<uint32_t>(r);
  stats->rows_scanned += static_cast<double>(ts.count);

  for (size_t i = 1; i < q.tables.size(); ++i) {
    const int new_ti = q.tables[i];
    const Table& new_table = db_->tables()[new_ti];
    stats->rows_scanned += static_cast<double>(new_table.num_rows());

    // Find the FK edge linking new_ti to some table already in the chain.
    int probe_table = -1, probe_col = -1, build_col = -1;
    for (size_t j = 0; j < ts.tables.size() && probe_table < 0; ++j) {
      for (const ForeignKey& fk :
           cat.JoinEdges(cat.table(ts.tables[j]).name(),
                         cat.table(new_ti).name())) {
        const bool new_is_from = fk.from_table == cat.table(new_ti).name();
        const std::string& new_col_name =
            new_is_from ? fk.from_column : fk.to_column;
        const std::string& old_col_name =
            new_is_from ? fk.to_column : fk.from_column;
        probe_table = ts.tables[j];
        probe_col = cat.table(ts.tables[j]).FindColumn(old_col_name);
        build_col = cat.table(new_ti).FindColumn(new_col_name);
        break;
      }
    }
    if (probe_table < 0) {
      return Status::InvalidArgument(
          "no FK edge joins " + cat.table(new_ti).name() + " into the chain");
    }

    // Build hash on the new table's join column.
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> hash;
    hash.reserve(new_table.num_rows());
    for (size_t r = 0; r < new_table.num_rows(); ++r) {
      Value v = new_table.GetValue(r, build_col);
      if (v.is_null()) continue;
      hash[v].push_back(static_cast<uint32_t>(r));
    }

    // Probe with the existing tuples.
    const size_t stride = ts.tables.size();
    size_t probe_pos = 0;
    for (size_t j = 0; j < stride; ++j) {
      if (ts.tables[j] == probe_table) probe_pos = j;
    }
    std::vector<uint32_t> out;
    out.reserve(ts.flat.size() + ts.count);
    size_t out_count = 0;
    stats->rows_probed += static_cast<double>(ts.count);
    for (size_t t = 0; t < ts.count; ++t) {
      Value v = db_->tables()[probe_table].GetValue(
          ts.flat[t * stride + probe_pos], probe_col);
      if (v.is_null()) continue;
      auto it = hash.find(v);
      if (it == hash.end()) continue;
      for (uint32_t r : it->second) {
        if (out_count + 1 > max_intermediate_tuples_) {
          return Status::OutOfRange("join intermediate exceeds limit");
        }
        for (size_t j = 0; j < stride; ++j) {
          out.push_back(ts.flat[t * stride + j]);
        }
        out.push_back(r);
        ++out_count;
      }
    }
    ts.tables.push_back(new_ti);
    ts.flat = std::move(out);
    ts.count = out_count;
    stats->rows_joined += static_cast<double>(out_count);
  }
  return ts;
}

Status Executor::EvalPredicate(const Predicate& p, const TupleSet& ts,
                               std::vector<bool>* out,
                               ExecStats* stats) const {
  out->assign(ts.count, false);
  switch (p.kind) {
    case PredicateKind::kValue: {
      for (size_t t = 0; t < ts.count; ++t) {
        (*out)[t] = CompareValues(TupleValue(ts, t, p.column), p.op, p.value);
      }
      return Status::Ok();
    }
    case PredicateKind::kScalarSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/true);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      if (sub->cardinality != 1 || sub->first_column.empty()) {
        return Status::Ok();  // non-scalar subquery result: predicate false
      }
      const Value& scalar = sub->first_column[0];
      for (size_t t = 0; t < ts.count; ++t) {
        (*out)[t] = CompareValues(TupleValue(ts, t, p.column), p.op, scalar);
      }
      return Status::Ok();
    }
    case PredicateKind::kInSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/true);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      std::unordered_set<Value, ValueHash> members(sub->first_column.begin(),
                                                   sub->first_column.end());
      for (size_t t = 0; t < ts.count; ++t) {
        Value v = TupleValue(ts, t, p.column);
        if (v.is_null()) continue;
        (*out)[t] = members.count(v) > 0;
      }
      return Status::Ok();
    }
    case PredicateKind::kExistsSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/false);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      bool exists = sub->cardinality > 0;
      if (p.negated) exists = !exists;
      out->assign(ts.count, exists);
      return Status::Ok();
    }
    case PredicateKind::kLike: {
      if (!p.value.is_string()) return Status::Ok();
      const std::string& pattern = p.value.as_string();
      for (size_t t = 0; t < ts.count; ++t) {
        Value v = TupleValue(ts, t, p.column);
        if (v.is_string()) (*out)[t] = LikeMatch(v.as_string(), pattern);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown predicate kind");
}

Status Executor::ApplyWhere(const WhereClause& where, TupleSet* ts,
                            ExecStats* stats) const {
  if (where.empty()) return Status::Ok();
  std::vector<std::vector<bool>> results(where.predicates.size());
  for (size_t i = 0; i < where.predicates.size(); ++i) {
    LSG_RETURN_IF_ERROR(
        EvalPredicate(where.predicates[i], *ts, &results[i], stats));
  }
  const size_t stride = ts->tables.size();
  std::vector<uint32_t> out;
  size_t out_count = 0;
  std::vector<bool> per_pred(where.predicates.size());
  for (size_t t = 0; t < ts->count; ++t) {
    for (size_t i = 0; i < results.size(); ++i) per_pred[i] = results[i][t];
    if (!CombinePredicates(per_pred, where.connectors)) continue;
    for (size_t j = 0; j < stride; ++j) out.push_back(ts->flat[t * stride + j]);
    ++out_count;
  }
  ts->flat = std::move(out);
  ts->count = out_count;
  return Status::Ok();
}

StatusOr<SelectResult> Executor::ExecuteSelect(
    const SelectQuery& q, bool materialize_first_column) const {
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("exec.select_ns")
          : nullptr);
  SelectResult result;
  LSG_ASSIGN_OR_RETURN(TupleSet ts, BuildJoin(q, &result.stats));
  LSG_RETURN_IF_ERROR(ApplyWhere(q.where, &ts, &result.stats));

  const bool has_agg = q.HasAggregate();

  if (q.group_by.empty()) {
    if (!has_agg) {
      result.cardinality = ts.count;
      if (materialize_first_column && !q.items.empty()) {
        result.first_column.reserve(ts.count);
        for (size_t t = 0; t < ts.count; ++t) {
          result.first_column.push_back(
              TupleValue(ts, t, q.items[0].column));
        }
      }
    } else {
      // Aggregate collapse: exactly one output row.
      result.cardinality = 1;
      if (materialize_first_column && !q.items.empty()) {
        std::vector<Value> col;
        col.reserve(ts.count);
        for (size_t t = 0; t < ts.count; ++t) {
          col.push_back(TupleValue(ts, t, q.items[0].column));
        }
        result.first_column.push_back(AggregateValues(q.items[0].agg, col));
      }
    }
    result.stats.rows_output += static_cast<double>(result.cardinality);
    return result;
  }

  // GROUP BY: bucket tuples by the group key.
  std::unordered_map<std::string, std::vector<uint32_t>> groups;
  std::vector<Value> key_vals(q.group_by.size());
  for (size_t t = 0; t < ts.count; ++t) {
    for (size_t k = 0; k < q.group_by.size(); ++k) {
      key_vals[k] = TupleValue(ts, t, q.group_by[k]);
    }
    groups[GroupKeyOf(key_vals)].push_back(static_cast<uint32_t>(t));
  }

  uint64_t passing = 0;
  for (const auto& [key, rows] : groups) {
    (void)key;
    bool pass = true;
    if (q.having.has_value()) {
      std::vector<Value> col;
      col.reserve(rows.size());
      for (uint32_t t : rows) {
        col.push_back(TupleValue(ts, t, q.having->column));
      }
      Value agg = AggregateValues(q.having->agg, col);
      pass = CompareValues(agg, q.having->op, q.having->value);
    }
    if (!pass) continue;
    ++passing;
    if (materialize_first_column && !q.items.empty()) {
      const SelectItem& item = q.items[0];
      if (item.agg == AggFunc::kNone) {
        result.first_column.push_back(TupleValue(ts, rows[0], item.column));
      } else {
        std::vector<Value> col;
        col.reserve(rows.size());
        for (uint32_t t : rows) col.push_back(TupleValue(ts, t, item.column));
        result.first_column.push_back(AggregateValues(item.agg, col));
      }
    }
  }
  result.cardinality = passing;
  result.stats.rows_output += static_cast<double>(passing);
  return result;
}

StatusOr<std::vector<bool>> Executor::MatchRows(
    int table_idx, const WhereClause& where) const {
  if (table_idx < 0 || static_cast<size_t>(table_idx) >= db_->num_tables()) {
    return Status::InvalidArgument("MatchRows: table index out of range");
  }
  const size_t n = db_->tables()[table_idx].num_rows();
  std::vector<bool> match(n, true);
  if (where.empty()) return match;

  TupleSet ts;
  ts.tables = {table_idx};
  ts.count = n;
  ts.flat.reserve(n);
  for (size_t r = 0; r < n; ++r) ts.flat.push_back(static_cast<uint32_t>(r));

  ExecStats stats;
  std::vector<std::vector<bool>> results(where.predicates.size());
  for (size_t i = 0; i < where.predicates.size(); ++i) {
    LSG_RETURN_IF_ERROR(
        EvalPredicate(where.predicates[i], ts, &results[i], &stats));
  }
  std::vector<bool> per_pred(where.predicates.size());
  for (size_t t = 0; t < n; ++t) {
    for (size_t i = 0; i < results.size(); ++i) per_pred[i] = results[i][t];
    match[t] = CombinePredicates(per_pred, where.connectors);
  }
  return match;
}

StatusOr<uint64_t> Executor::Cardinality(const QueryAst& ast) const {
  switch (ast.type) {
    case QueryType::kSelect: {
      if (ast.select == nullptr) {
        return Status::InvalidArgument("empty SELECT ast");
      }
      auto r = ExecuteSelect(*ast.select, /*materialize=*/false);
      if (!r.ok()) return r.status();
      return r->cardinality;
    }
    case QueryType::kInsert: {
      if (ast.insert == nullptr) {
        return Status::InvalidArgument("empty INSERT ast");
      }
      if (ast.insert->source != nullptr) {
        auto r = ExecuteSelect(*ast.insert->source, /*materialize=*/false);
        if (!r.ok()) return r.status();
        return r->cardinality;
      }
      return static_cast<uint64_t>(1);
    }
    case QueryType::kUpdate: {
      if (ast.update == nullptr) {
        return Status::InvalidArgument("empty UPDATE ast");
      }
      SelectQuery probe;
      probe.tables = {ast.update->table_idx};
      // Count matching rows without copying the WHERE (it owns subqueries):
      ExecStats stats;
      LSG_ASSIGN_OR_RETURN(TupleSet ts, BuildJoin(probe, &stats));
      LSG_RETURN_IF_ERROR(ApplyWhere(ast.update->where, &ts, &stats));
      return static_cast<uint64_t>(ts.count);
    }
    case QueryType::kDelete: {
      if (ast.del == nullptr) {
        return Status::InvalidArgument("empty DELETE ast");
      }
      SelectQuery probe;
      probe.tables = {ast.del->table_idx};
      ExecStats stats;
      LSG_ASSIGN_OR_RETURN(TupleSet ts, BuildJoin(probe, &stats));
      LSG_RETURN_IF_ERROR(ApplyWhere(ast.del->where, &ts, &stats));
      return static_cast<uint64_t>(ts.count);
    }
  }
  return Status::Internal("unknown query type");
}

}  // namespace lsg
