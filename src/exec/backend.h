#ifndef LEARNEDSQLGEN_EXEC_BACKEND_H_
#define LEARNEDSQLGEN_EXEC_BACKEND_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace lsg {

struct SelectResult;

/// Which execution engine answers true-cardinality / true-cost queries.
enum class ExecutionBackendKind {
  /// The tuple-at-a-time Executor (src/exec/executor.*). Permanent
  /// correctness oracle — simple, scalar, always available.
  kReference = 0,
  /// The columnar batch engine (src/vexec/): morsel-parallel scans,
  /// typed hash joins, vectorized predicates. Bitwise-equivalent results
  /// (cardinality, first column, ExecStats) at 10–100× the throughput;
  /// differentially tested against kReference on every fuzz episode.
  kVectorized = 1,
};

/// Abstract query-execution surface shared by the reference Executor and
/// the vectorized engine, so Environment / GenerationService pick a
/// backend per options without caring which one they got. All methods are
/// const and safe to call concurrently from multiple threads *holding
/// distinct backend instances*; one instance is single-query-at-a-time.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// True result cardinality of any query type. For DML the cardinality
  /// is the number of affected rows (dry run — no mutation). Join blowup
  /// past the intermediate-tuple cap returns OutOfRange.
  virtual StatusOr<uint64_t> Cardinality(const QueryAst& ast) const = 0;

  /// Executes a SELECT; optionally materializes the first projection
  /// column (used by IN / scalar subqueries and the tests).
  virtual StatusOr<SelectResult> ExecuteSelect(
      const SelectQuery& q, bool materialize_first_column) const = 0;

  /// Evaluates a single-table WHERE against every row of `table_idx`,
  /// returning one bool per row (true = row matches). Used to apply
  /// UPDATE/DELETE for real and by the fuzzing oracles.
  virtual StatusOr<std::vector<bool>> MatchRows(
      int table_idx, const WhereClause& where) const = 0;

  virtual const Database* database() const = 0;

  /// Stable backend name for logs / metrics ("reference", "vectorized").
  virtual const char* name() const = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_EXEC_BACKEND_H_
