#ifndef LEARNEDSQLGEN_EXEC_EXECUTOR_H_
#define LEARNEDSQLGEN_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/backend.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace lsg {

/// Cumulative operator work observed during execution; feeds the
/// "true cost" variant of the cost model (feedback ablation).
struct ExecStats {
  /// Saturation ceiling for every counter, mirroring the estimator's
  /// CardinalityEstimator::kMaxJoinRows cap: a pathological join chain
  /// must degrade to a pinned maximum, not run the meters to inf.
  static constexpr double kMaxRows = 1e15;

  double rows_scanned = 0;
  double rows_joined = 0;   ///< tuples produced by joins
  double rows_probed = 0;   ///< tuples driving hash-probe work per join stage
  double rows_output = 0;

  static double Clamp(double v) { return v > kMaxRows ? kMaxRows : v; }

  void Add(const ExecStats& o) {
    rows_scanned = Clamp(rows_scanned + o.rows_scanned);
    rows_joined = Clamp(rows_joined + o.rows_joined);
    rows_probed = Clamp(rows_probed + o.rows_probed);
    rows_output = Clamp(rows_output + o.rows_output);
  }
};

/// Result of executing a SELECT.
struct SelectResult {
  uint64_t cardinality = 0;
  /// Values of the first projection item per output row; filled only when
  /// requested (used to evaluate IN / scalar subqueries).
  std::vector<Value> first_column;
  ExecStats stats;
};

/// Executes SELECT queries against an in-memory Database and returns true
/// result cardinalities. Pipeline: FK hash joins in chain order, then WHERE
/// (uncorrelated subqueries evaluated once), then GROUP BY / HAVING /
/// aggregate collapse. This is the tuple-at-a-time *reference* backend; the
/// vectorized engine in src/vexec/ must match it bitwise (cardinality,
/// first_column, ExecStats) and is differentially tested against it.
class Executor : public ExecutionBackend {
 public:
  /// `db` must outlive the executor. `max_intermediate_tuples` bounds join
  /// blowup; exceeding it returns OutOfRange.
  explicit Executor(const Database* db,
                    uint64_t max_intermediate_tuples = 1ull << 24);

  /// True result cardinality of any query type. For DML the cardinality is
  /// the number of affected rows (dry run — the database is not mutated).
  StatusOr<uint64_t> Cardinality(const QueryAst& ast) const override;

  /// Executes a SELECT; optionally materializes the first projection column.
  StatusOr<SelectResult> ExecuteSelect(
      const SelectQuery& q, bool materialize_first_column) const override;

  /// Evaluates a single-table WHERE against every row of `table_idx`,
  /// returning one bool per row (true = row matches). Used to apply
  /// UPDATE/DELETE for real and by the fuzzing oracle.
  StatusOr<std::vector<bool>> MatchRows(
      int table_idx, const WhereClause& where) const override;

  const Database* database() const override { return db_; }
  const char* name() const override { return "reference"; }

  const Database* db() const { return db_; }

 private:
  // Joined working set: row-major tuple store, stride = #tables in chain.
  struct TupleSet {
    std::vector<int> tables;        // catalog table indices, chain order
    std::vector<uint32_t> flat;     // size = count * tables.size()
    size_t count = 0;
  };

  StatusOr<TupleSet> BuildJoin(const SelectQuery& q, ExecStats* stats) const;
  Status ApplyWhere(const WhereClause& where, TupleSet* ts,
                    ExecStats* stats) const;

  /// Evaluates one predicate for every tuple into `out`.
  Status EvalPredicate(const Predicate& p, const TupleSet& ts,
                       std::vector<bool>* out, ExecStats* stats) const;

  Value TupleValue(const TupleSet& ts, size_t tuple, const ColumnRef& col) const;

  const Database* db_;
  uint64_t max_intermediate_tuples_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_EXEC_EXECUTOR_H_
