#ifndef LEARNEDSQLGEN_EXEC_EXPRESSION_H_
#define LEARNEDSQLGEN_EXEC_EXPRESSION_H_

#include <vector>

#include "catalog/value.h"
#include "sql/ast.h"

namespace lsg {

/// Evaluates `a op b` with SQL comparison semantics. Any NULL operand makes
/// the comparison false.
bool CompareValues(const Value& a, CompareOp op, const Value& b);

/// Combines per-predicate truth values with the connector chain, honoring
/// SQL precedence (AND binds tighter than OR). `conns.size()` must be
/// `preds.size() - 1`; an empty chain yields true.
bool CombinePredicates(const std::vector<bool>& preds,
                       const std::vector<BoolConn>& conns);

/// Same combination rule applied to selectivities (independence for AND,
/// inclusion-exclusion for OR) — shared by the cardinality estimator.
double CombineSelectivities(const std::vector<double>& sels,
                            const std::vector<BoolConn>& conns);

/// SQL LIKE matching: '%' matches any run (including empty), '_' matches
/// exactly one character; everything else is literal. Case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Computes `agg` over `values` in order (NULLs skipped). COUNT of an
/// empty input is 0; the other aggregates yield NULL. SUM/AVG accumulate
/// as a left fold in input order, so two engines that feed the same
/// values in the same order produce bitwise-identical doubles — the
/// invariant the vectorized engine's differential oracle relies on.
/// Shared by Executor and vexec; the fuzzing ReferenceEvaluator keeps an
/// independent copy so exec-vs-ref still cross-checks aggregation.
Value AggregateValues(AggFunc agg, const std::vector<Value>& values);

/// Serialized GROUP BY key: rendered literals joined by 0x1f. Both
/// execution backends must bucket by exactly this string so they induce
/// the same partition (grouping by Value::Compare instead would merge
/// values whose literals differ, e.g. across numeric type ranks).
std::string GroupKeyOf(const std::vector<Value>& vals);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_EXEC_EXPRESSION_H_
