#include "exec/dml_executor.h"

namespace lsg {

StatusOr<uint64_t> DmlExecutor::AffectedRows(const QueryAst& ast) const {
  if (ast.type == QueryType::kSelect) {
    return Status::InvalidArgument("AffectedRows expects a DML query");
  }
  return exec_.Cardinality(ast);
}

Status DmlExecutor::ApplyInsert(Database* db, const QueryAst& ast) const {
  if (ast.type != QueryType::kInsert || ast.insert == nullptr) {
    return Status::InvalidArgument("ApplyInsert expects an INSERT ast");
  }
  const InsertQuery& ins = *ast.insert;
  if (ins.source != nullptr) {
    return Status::Unimplemented(
        "ApplyInsert supports only the VALUES form; INSERT..SELECT is "
        "evaluated via AffectedRows");
  }
  Table* t = db->FindMutableTable(db->catalog().table(ins.table_idx).name());
  if (t == nullptr) return Status::NotFound("insert target table missing");
  return t->AppendRow(ins.values);
}

}  // namespace lsg
