#include "exec/dml_executor.h"

namespace lsg {

StatusOr<uint64_t> DmlExecutor::AffectedRows(const QueryAst& ast) const {
  if (ast.type == QueryType::kSelect) {
    return Status::InvalidArgument("AffectedRows expects a DML query");
  }
  return exec_.Cardinality(ast);
}

Status DmlExecutor::ApplyInsert(Database* db, const QueryAst& ast) const {
  if (ast.type != QueryType::kInsert || ast.insert == nullptr) {
    return Status::InvalidArgument("ApplyInsert expects an INSERT ast");
  }
  const InsertQuery& ins = *ast.insert;
  if (ins.source != nullptr) {
    return Status::Unimplemented(
        "ApplyInsert supports only the VALUES form; INSERT..SELECT is "
        "evaluated via AffectedRows");
  }
  Table* t = db->FindMutableTable(db->catalog().table(ins.table_idx).name());
  if (t == nullptr) return Status::NotFound("insert target table missing");
  return t->AppendRow(ins.values);
}

StatusOr<uint64_t> DmlExecutor::ApplyUpdate(Database* db,
                                            const QueryAst& ast) const {
  if (ast.type != QueryType::kUpdate || ast.update == nullptr) {
    return Status::InvalidArgument("ApplyUpdate expects an UPDATE ast");
  }
  const UpdateQuery& up = *ast.update;
  LSG_ASSIGN_OR_RETURN(std::vector<bool> match,
                       exec_.MatchRows(up.table_idx, up.where));
  Table* t = db->FindMutableTable(db->catalog().table(up.table_idx).name());
  if (t == nullptr) return Status::NotFound("update target table missing");
  uint64_t affected = 0;
  for (size_t r = 0; r < match.size(); ++r) {
    if (!match[r]) continue;
    LSG_RETURN_IF_ERROR(t->SetValue(r, up.set_column.column_idx, up.set_value));
    ++affected;
  }
  return affected;
}

StatusOr<uint64_t> DmlExecutor::ApplyDelete(Database* db,
                                            const QueryAst& ast) const {
  if (ast.type != QueryType::kDelete || ast.del == nullptr) {
    return Status::InvalidArgument("ApplyDelete expects a DELETE ast");
  }
  const DeleteQuery& del = *ast.del;
  LSG_ASSIGN_OR_RETURN(std::vector<bool> match,
                       exec_.MatchRows(del.table_idx, del.where));
  Table* t = db->FindMutableTable(db->catalog().table(del.table_idx).name());
  if (t == nullptr) return Status::NotFound("delete target table missing");
  uint64_t affected = 0;
  std::vector<bool> keep(match.size());
  for (size_t r = 0; r < match.size(); ++r) {
    keep[r] = !match[r];
    if (match[r]) ++affected;
  }
  t->FilterRows(keep);
  return affected;
}

StatusOr<uint64_t> DmlExecutor::Apply(Database* db,
                                      const QueryAst& ast) const {
  switch (ast.type) {
    case QueryType::kInsert:
      if (ast.insert != nullptr && ast.insert->source != nullptr) {
        return Status::Unimplemented("Apply supports only INSERT VALUES");
      }
      LSG_RETURN_IF_ERROR(ApplyInsert(db, ast));
      return static_cast<uint64_t>(1);
    case QueryType::kUpdate:
      return ApplyUpdate(db, ast);
    case QueryType::kDelete:
      return ApplyDelete(db, ast);
    case QueryType::kSelect:
      break;
  }
  return Status::InvalidArgument("Apply expects a DML query");
}

}  // namespace lsg
