#include "analysis/sql_linter.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

namespace {

/// Hard nesting ceiling independent of any QueryProfile: deeper trees are
/// never produced by the grammar and almost certainly indicate a runaway
/// builder, so the linter flags them rather than recursing forever.
constexpr int kMaxNestingDepth = 8;

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

bool IsStringLike(DataType type) {
  return type == DataType::kString || type == DataType::kCategorical;
}

}  // namespace

const char* LintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::kEmptyTables: return "empty-tables";
    case LintRule::kEmptySelectItems: return "empty-select-items";
    case LintRule::kJoinNotPkFk: return "join-not-pk-fk";
    case LintRule::kColumnOutOfScope: return "column-out-of-scope";
    case LintRule::kOperatorTypeMismatch: return "operator-type-mismatch";
    case LintRule::kAggregateTypeMismatch: return "aggregate-type-mismatch";
    case LintRule::kValueTypeMismatch: return "value-type-mismatch";
    case LintRule::kLikeOnNonString: return "like-on-non-string";
    case LintRule::kMixedItemsWithoutGroupBy:
      return "mixed-items-without-group-by";
    case LintRule::kGroupByMissingPlainItem:
      return "group-by-missing-plain-item";
    case LintRule::kGroupByNotSelectItem: return "group-by-not-select-item";
    case LintRule::kHavingWithoutGroupBy: return "having-without-group-by";
    case LintRule::kOrderByNotSelectItem: return "order-by-not-select-item";
    case LintRule::kScalarSubqueryNotScalar:
      return "scalar-subquery-not-scalar";
    case LintRule::kInSubqueryShape: return "in-subquery-shape";
    case LintRule::kSubqueryTypeMismatch: return "subquery-type-mismatch";
    case LintRule::kNestingTooDeep: return "nesting-too-deep";
    case LintRule::kDmlTargetInvalid: return "dml-target-invalid";
    case LintRule::kInsertArity: return "insert-arity";
    case LintRule::kInsertSourceShape: return "insert-source-shape";
    case LintRule::kUpdatePrimaryKey: return "update-primary-key";
    case LintRule::kNumRules: break;
  }
  return "unknown-rule";
}

SqlLinter::SqlLinter(const Catalog* catalog) : catalog_(catalog) {
  LSG_CHECK(catalog != nullptr);
}

bool SqlLinter::OperatorAllowed(CompareOp op, DataType type) {
  if (IsNumericType(type)) return true;
  return op == CompareOp::kEq || op == CompareOp::kLt || op == CompareOp::kGt;
}

bool SqlLinter::AggregateAllowed(AggFunc agg, DataType type) {
  if (agg == AggFunc::kCount || agg == AggFunc::kNone) return true;
  return IsNumericType(type);
}

bool SqlLinter::TypesComparable(DataType a, DataType b) {
  return a == b || (IsNumericType(a) && IsNumericType(b));
}

bool SqlLinter::ValueCompatible(const Value& value, DataType type) {
  if (value.is_numeric()) return IsNumericType(type);
  if (value.is_string()) return IsStringLike(type);
  return false;  // NULL literals are never generated
}

bool SqlLinter::HasForeignKeyEdge(int table_a, int table_b) const {
  const std::string& a = catalog_->table(table_a).name();
  const std::string& b = catalog_->table(table_b).name();
  for (const ForeignKey& fk : catalog_->foreign_keys()) {
    if ((fk.from_table == a && fk.to_table == b) ||
        (fk.from_table == b && fk.to_table == a)) {
      return true;
    }
  }
  return false;
}

bool SqlLinter::ColumnValid(const ColumnRef& col) const {
  return col.table_idx >= 0 &&
         col.table_idx < static_cast<int>(catalog_->num_tables()) &&
         col.column_idx >= 0 &&
         col.column_idx <
             static_cast<int>(catalog_->table(col.table_idx).num_columns());
}

DataType SqlLinter::TypeOf(const ColumnRef& col) const {
  return catalog_->table(col.table_idx).column(col.column_idx).type;
}

std::string SqlLinter::ColumnName(const ColumnRef& col) const {
  if (!ColumnValid(col)) {
    return StrFormat("<invalid %d.%d>", col.table_idx, col.column_idx);
  }
  return catalog_->table(col.table_idx).name() + "." +
         catalog_->table(col.table_idx).column(col.column_idx).name;
}

void SqlLinter::CheckColumn(const ColumnRef& col,
                            const std::vector<int>& scope_tables,
                            const char* where,
                            std::vector<LintIssue>* out) const {
  if (!ColumnValid(col) ||
      std::find(scope_tables.begin(), scope_tables.end(), col.table_idx) ==
          scope_tables.end()) {
    out->push_back({LintRule::kColumnOutOfScope,
                    StrFormat("%s column %s not in the query's tables", where,
                              ColumnName(col).c_str())});
  }
}

std::vector<LintIssue> SqlLinter::Lint(const QueryAst& ast) const {
  std::vector<LintIssue> out;
  const int n_tables = static_cast<int>(catalog_->num_tables());
  auto check_target = [&](int table_idx, const char* what) {
    if (table_idx < 0 || table_idx >= n_tables) {
      out.push_back({LintRule::kDmlTargetInvalid,
                     StrFormat("%s targets invalid table index %d", what,
                               table_idx)});
      return false;
    }
    return true;
  };

  switch (ast.type) {
    case QueryType::kSelect: {
      if (ast.select == nullptr) {
        out.push_back({LintRule::kEmptyTables, "SELECT query missing body"});
        break;
      }
      LintSelectInto(*ast.select, 0, &out);
      break;
    }
    case QueryType::kInsert: {
      const InsertQuery* ins = ast.insert.get();
      if (ins == nullptr || !check_target(ins->table_idx, "INSERT")) break;
      const TableSchema& schema = catalog_->table(ins->table_idx);
      if (ins->source != nullptr) {
        const SelectQuery& src = *ins->source;
        if (src.items.size() != schema.num_columns()) {
          out.push_back(
              {LintRule::kInsertSourceShape,
               StrFormat("INSERT..SELECT projects %zu items, table %s has "
                         "%zu columns",
                         src.items.size(), schema.name().c_str(),
                         schema.num_columns())});
        }
        for (size_t i = 0; i < src.items.size() && i < schema.num_columns();
             ++i) {
          const SelectItem& it = src.items[i];
          if (it.agg != AggFunc::kNone ||
              !ColumnValid(it.column) ||
              !TypesComparable(TypeOf(it.column), schema.column(i).type)) {
            out.push_back({LintRule::kInsertSourceShape,
                           StrFormat("INSERT..SELECT item %zu does not match "
                                     "column %s",
                                     i, schema.column(i).name.c_str())});
          }
        }
        LintSelectInto(src, 1, &out);
      } else {
        if (ins->values.size() != schema.num_columns()) {
          out.push_back({LintRule::kInsertArity,
                         StrFormat("INSERT supplies %zu values, table %s has "
                                   "%zu columns",
                                   ins->values.size(), schema.name().c_str(),
                                   schema.num_columns())});
        }
        for (size_t i = 0; i < ins->values.size() && i < schema.num_columns();
             ++i) {
          if (!ValueCompatible(ins->values[i], schema.column(i).type)) {
            out.push_back({LintRule::kValueTypeMismatch,
                           StrFormat("INSERT value %zu incompatible with "
                                     "column %s",
                                     i, schema.column(i).name.c_str())});
          }
        }
      }
      break;
    }
    case QueryType::kUpdate: {
      const UpdateQuery* upd = ast.update.get();
      if (upd == nullptr || !check_target(upd->table_idx, "UPDATE")) break;
      const std::vector<int> scope = {upd->table_idx};
      CheckColumn(upd->set_column, scope, "UPDATE SET", &out);
      if (ColumnValid(upd->set_column) &&
          upd->set_column.table_idx == upd->table_idx) {
        const ColumnSchema& col = catalog_->table(upd->table_idx)
                                      .column(upd->set_column.column_idx);
        if (col.is_primary_key) {
          out.push_back({LintRule::kUpdatePrimaryKey,
                         "UPDATE SET over primary-key column " +
                             ColumnName(upd->set_column)});
        }
        if (!ValueCompatible(upd->set_value, col.type)) {
          out.push_back({LintRule::kValueTypeMismatch,
                         "UPDATE SET value incompatible with column " +
                             ColumnName(upd->set_column)});
        }
      }
      LintWhereInto(upd->where, scope, 0, &out);
      break;
    }
    case QueryType::kDelete: {
      const DeleteQuery* del = ast.del.get();
      if (del == nullptr || !check_target(del->table_idx, "DELETE")) break;
      LintWhereInto(del->where, {del->table_idx}, 0, &out);
      break;
    }
  }
  return out;
}

std::vector<LintIssue> SqlLinter::LintSelect(const SelectQuery& q) const {
  std::vector<LintIssue> out;
  LintSelectInto(q, 0, &out);
  return out;
}

void SqlLinter::LintSelectInto(const SelectQuery& q, int depth,
                               std::vector<LintIssue>* out) const {
  if (depth > kMaxNestingDepth) {
    out->push_back({LintRule::kNestingTooDeep,
                    StrFormat("subquery nesting exceeds depth %d",
                              kMaxNestingDepth)});
    return;
  }
  if (q.tables.empty()) {
    out->push_back({LintRule::kEmptyTables, "SELECT with no FROM tables"});
    return;
  }
  const int n_tables = static_cast<int>(catalog_->num_tables());
  for (int t : q.tables) {
    if (t < 0 || t >= n_tables) {
      out->push_back({LintRule::kEmptyTables,
                      StrFormat("FROM references invalid table index %d", t)});
      return;
    }
  }

  // Join chain: every table after the anchor must share a PK-FK edge with
  // some earlier table (paper §5 "Meaningful Checking").
  for (size_t i = 1; i < q.tables.size(); ++i) {
    bool joinable = false;
    for (size_t j = 0; j < i && !joinable; ++j) {
      joinable = HasForeignKeyEdge(q.tables[j], q.tables[i]);
    }
    if (!joinable) {
      out->push_back({LintRule::kJoinNotPkFk,
                      "joined table " + catalog_->table(q.tables[i]).name() +
                          " has no PK-FK edge to the preceding chain"});
    }
  }

  if (q.items.empty()) {
    out->push_back({LintRule::kEmptySelectItems, "SELECT with no items"});
  }
  bool any_plain = false, any_agg = false;
  for (const SelectItem& it : q.items) {
    CheckColumn(it.column, q.tables, "select-item", out);
    if (it.agg == AggFunc::kNone) {
      any_plain = true;
    } else {
      any_agg = true;
      if (ColumnValid(it.column) &&
          !AggregateAllowed(it.agg, TypeOf(it.column))) {
        out->push_back({LintRule::kAggregateTypeMismatch,
                        StrFormat("%s over non-numeric column %s",
                                  AggFuncName(it.agg),
                                  ColumnName(it.column).c_str())});
      }
    }
  }
  if (any_plain && any_agg && q.group_by.empty()) {
    out->push_back({LintRule::kMixedItemsWithoutGroupBy,
                    "plain and aggregate select items without GROUP BY"});
  }

  if (!q.group_by.empty()) {
    for (const ColumnRef& g : q.group_by) {
      CheckColumn(g, q.tables, "GROUP BY", out);
      bool is_item = false;
      for (const SelectItem& it : q.items) {
        if (it.agg == AggFunc::kNone && it.column == g) is_item = true;
      }
      if (!is_item) {
        out->push_back({LintRule::kGroupByNotSelectItem,
                        "GROUP BY column " + ColumnName(g) +
                            " is not a plain select item"});
      }
    }
    for (const SelectItem& it : q.items) {
      if (it.agg != AggFunc::kNone) continue;
      if (std::find(q.group_by.begin(), q.group_by.end(), it.column) ==
          q.group_by.end()) {
        out->push_back({LintRule::kGroupByMissingPlainItem,
                        "plain select item " + ColumnName(it.column) +
                            " missing from GROUP BY"});
      }
    }
  }

  if (q.having.has_value()) {
    if (q.group_by.empty()) {
      out->push_back({LintRule::kHavingWithoutGroupBy,
                      "HAVING clause without GROUP BY"});
    }
    const HavingClause& h = *q.having;
    CheckColumn(h.column, q.tables, "HAVING", out);
    if (ColumnValid(h.column) && !AggregateAllowed(h.agg, TypeOf(h.column))) {
      out->push_back({LintRule::kAggregateTypeMismatch,
                      StrFormat("HAVING %s over non-numeric column %s",
                                AggFuncName(h.agg),
                                ColumnName(h.column).c_str())});
    }
    // Every aggregate result is numeric, so the rhs literal must be too.
    if (!h.value.is_numeric()) {
      out->push_back({LintRule::kValueTypeMismatch,
                      "HAVING compares an aggregate to a non-numeric literal"});
    }
  }

  for (const ColumnRef& o : q.order_by) {
    CheckColumn(o, q.tables, "ORDER BY", out);
    bool is_item = false;
    for (const SelectItem& it : q.items) {
      if (it.agg == AggFunc::kNone && it.column == o) is_item = true;
    }
    if (!is_item) {
      out->push_back({LintRule::kOrderByNotSelectItem,
                      "ORDER BY column " + ColumnName(o) +
                          " is not a plain select item"});
    }
  }

  LintWhereInto(q.where, q.tables, depth, out);
}

void SqlLinter::LintWhereInto(const WhereClause& where,
                              const std::vector<int>& scope_tables, int depth,
                              std::vector<LintIssue>* out) const {
  for (const Predicate& p : where.predicates) {
    switch (p.kind) {
      case PredicateKind::kValue: {
        CheckColumn(p.column, scope_tables, "predicate", out);
        if (!ColumnValid(p.column)) break;
        DataType type = TypeOf(p.column);
        if (!OperatorAllowed(p.op, type)) {
          out->push_back({LintRule::kOperatorTypeMismatch,
                          StrFormat("operator %s illegal for %s column %s",
                                    CompareOpText(p.op), DataTypeName(type),
                                    ColumnName(p.column).c_str())});
        }
        if (!ValueCompatible(p.value, type)) {
          out->push_back({LintRule::kValueTypeMismatch,
                          "literal incompatible with column " +
                              ColumnName(p.column)});
        }
        break;
      }
      case PredicateKind::kLike: {
        CheckColumn(p.column, scope_tables, "LIKE", out);
        if (ColumnValid(p.column) && !IsStringLike(TypeOf(p.column))) {
          out->push_back({LintRule::kLikeOnNonString,
                          "LIKE over non-string column " +
                              ColumnName(p.column)});
        }
        if (!p.value.is_string()) {
          out->push_back({LintRule::kLikeOnNonString,
                          "LIKE pattern is not a string literal"});
        }
        break;
      }
      case PredicateKind::kScalarSub: {
        CheckColumn(p.column, scope_tables, "predicate", out);
        if (p.subquery == nullptr) {
          out->push_back({LintRule::kScalarSubqueryNotScalar,
                          "scalar predicate without a subquery"});
          break;
        }
        const SelectQuery& sub = *p.subquery;
        if (sub.items.size() != 1 || sub.items[0].agg == AggFunc::kNone) {
          out->push_back({LintRule::kScalarSubqueryNotScalar,
                          "scalar subquery must project exactly one "
                          "aggregate item"});
        } else if (ColumnValid(p.column)) {
          // Aggregate results are numeric, so the lhs must be numeric too.
          DataType lhs = TypeOf(p.column);
          if (!IsNumericType(lhs)) {
            out->push_back({LintRule::kSubqueryTypeMismatch,
                            "scalar subquery compared against non-numeric "
                            "column " + ColumnName(p.column)});
          } else if (!OperatorAllowed(p.op, lhs)) {
            out->push_back({LintRule::kOperatorTypeMismatch,
                            StrFormat("operator %s illegal for column %s",
                                      CompareOpText(p.op),
                                      ColumnName(p.column).c_str())});
          }
        }
        LintSelectInto(sub, depth + 1, out);
        break;
      }
      case PredicateKind::kInSub: {
        CheckColumn(p.column, scope_tables, "IN predicate", out);
        if (p.subquery == nullptr) {
          out->push_back({LintRule::kInSubqueryShape,
                          "IN predicate without a subquery"});
          break;
        }
        const SelectQuery& sub = *p.subquery;
        if (sub.items.size() != 1 || sub.items[0].agg != AggFunc::kNone) {
          out->push_back({LintRule::kInSubqueryShape,
                          "IN subquery must project exactly one plain "
                          "column"});
        } else if (ColumnValid(p.column) && ColumnValid(sub.items[0].column) &&
                   !TypesComparable(TypeOf(p.column),
                                    TypeOf(sub.items[0].column))) {
          out->push_back({LintRule::kSubqueryTypeMismatch,
                          "IN subquery column " +
                              ColumnName(sub.items[0].column) +
                              " incomparable with " + ColumnName(p.column)});
        }
        LintSelectInto(sub, depth + 1, out);
        break;
      }
      case PredicateKind::kExistsSub: {
        if (p.subquery == nullptr) {
          out->push_back({LintRule::kInSubqueryShape,
                          "EXISTS predicate without a subquery"});
          break;
        }
        LintSelectInto(*p.subquery, depth + 1, out);
        break;
      }
    }
  }
}

}  // namespace lsg
