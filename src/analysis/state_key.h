#ifndef LEARNEDSQLGEN_ANALYSIS_STATE_KEY_H_
#define LEARNEDSQLGEN_ANALYSIS_STATE_KEY_H_

#include <string>

#include "fsm/generation_fsm.h"
#include "sql/ast_builder.h"

namespace lsg {

/// Canonical abstract-state signature of a partially built query.
///
/// Two generator states with equal keys are bisimilar w.r.t. the FSM's
/// masks: `GenerationFsm::ValidActions()` reads only (a) the token count
/// compared against the profile budget, (b) each `BuildFrame`'s phase,
/// purpose, scope tables and pending_* fields, and (c) coarse summaries of
/// the partial AST (select-item mix and plain-column set, predicate count,
/// HAVING head, ORDER BY emptiness, DML target/progress) — never literal
/// values inside predicates. The key serialises exactly those observables:
///
///  - token count saturated at `profile.max_tokens` (both budget flags are
///    constant beyond it),
///  - per frame: purpose, phase, scope_tables, pending agg/column/op/negated,
///    outer_lhs, pinned_table/insert_next_col, sorted groupby_remaining and
///    orderby_candidates,
///  - per frame query: sorted unique plain-item columns, plain/aggregate item
///    counts, WHERE predicate count, HAVING (agg, column) when present,
///    ORDER BY emptiness, and (under require_nested) a has-nested bit,
///  - DML summaries: INSERT target + values consumed + source bit, UPDATE
///    target + SET column, DELETE target.
///
/// This makes exhaustive exploration tractable: the analyzer explores one
/// representative per key and the bisimulation guarantees every merged
/// state offers the same masks forever after.
std::string AbstractStateKey(const AstBuilder& builder,
                             const QueryProfile& profile);

/// Budget-free variant of AbstractStateKey, the graph-export surface used
/// by the FSM compiler (fsm/compiled_fsm.cc): every field except the token
/// slack. The masks read the token count only through the two budget
/// booleans (BudgetTight / subquery-tight), and stepping a token never
/// reads the count at all, so the structural graph keyed this way is
/// budget-invariant: one transition table serves every token count, with a
/// per-state mask *triple* (one mask per budget regime) supplying the only
/// budget-dependent observable. Equal structural keys therefore imply equal
/// masks under every regime and equal successor keys for every token.
std::string StructuralStateKey(const AstBuilder& builder,
                               const QueryProfile& profile);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_ANALYSIS_STATE_KEY_H_
