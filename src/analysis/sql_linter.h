#ifndef LEARNEDSQLGEN_ANALYSIS_SQL_LINTER_H_
#define LEARNEDSQLGEN_ANALYSIS_SQL_LINTER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"

namespace lsg {

/// Semantic lint rules. Each encodes one validity obligation the paper's FSM
/// (§5) is supposed to guarantee by construction; the linter re-checks them
/// on the finished AST so the FSM and the linter form a differential pair:
/// every FSM-emitted query must lint clean (fuzz oracle), and every lint
/// rule must be unreachable in the FSM's state graph (FsmAnalyzer).
enum class LintRule {
  kEmptyTables = 0,         ///< SELECT with no FROM tables
  kEmptySelectItems,        ///< SELECT with no projection items
  kJoinNotPkFk,             ///< a joined table has no FK edge to the chain
  kColumnOutOfScope,        ///< column ref outside the query's tables
  kOperatorTypeMismatch,    ///< operator illegal for the column type
  kAggregateTypeMismatch,   ///< SUM/AVG/MIN/MAX over a non-numeric column
  kValueTypeMismatch,       ///< literal type incompatible with the column
  kLikeOnNonString,         ///< LIKE over a numeric column / non-string rhs
  kMixedItemsWithoutGroupBy,///< plain + aggregate items but no GROUP BY
  kGroupByMissingPlainItem, ///< a plain select item absent from GROUP BY
  kGroupByNotSelectItem,    ///< GROUP BY column that is not a plain item
  kHavingWithoutGroupBy,    ///< HAVING clause without GROUP BY
  kOrderByNotSelectItem,    ///< ORDER BY column that is not a plain item
  kScalarSubqueryNotScalar, ///< scalar subquery without a single agg item
  kInSubqueryShape,         ///< IN subquery without a single plain item
  kSubqueryTypeMismatch,    ///< subquery result incomparable with lhs
  kNestingTooDeep,          ///< subquery nesting beyond the hard cap
  kDmlTargetInvalid,        ///< DML table index out of range
  kInsertArity,             ///< INSERT VALUES count != table column count
  kInsertSourceShape,       ///< INSERT..SELECT source shape mismatch
  kUpdatePrimaryKey,        ///< UPDATE SET over a primary-key column
  kNumRules,                // sentinel
};

/// Stable kebab-case rule name ("join-not-pk-fk", ...).
const char* LintRuleName(LintRule rule);

/// One lint finding: the violated rule plus a human-readable message.
struct LintIssue {
  LintRule rule = LintRule::kNumRules;
  std::string message;
};

/// AST-level semantic checker, deliberately independent of the FSM: it never
/// consults fsm/semantic_rules.cc, re-deriving every predicate (operator
/// sets, aggregate typing, FK edges) from the catalog alone so a rule gap in
/// one side cannot hide the same gap in the other.
class SqlLinter {
 public:
  /// `catalog` must outlive the linter.
  explicit SqlLinter(const Catalog* catalog);

  /// Lints a complete query of any type; empty result = clean.
  std::vector<LintIssue> Lint(const QueryAst& ast) const;

  /// Lints one SELECT (used recursively for subqueries).
  std::vector<LintIssue> LintSelect(const SelectQuery& q) const;

  // --- rule predicates (independent re-implementations, not forwarding to
  // fsm/semantic_rules.h; see class comment) ---

  /// Paper §4.1/§5: numeric columns take the full operator set, string and
  /// categorical columns only {=, <, >}.
  static bool OperatorAllowed(CompareOp op, DataType type);

  /// Paper §5: COUNT applies to anything; SUM/AVG/MIN/MAX need numerics.
  static bool AggregateAllowed(AggFunc agg, DataType type);

  /// Paper §5: identical types or both-numeric may be compared/joined.
  static bool TypesComparable(DataType a, DataType b);

  /// True if `value` may be compared against / stored into a column of
  /// `type` (NULL literals are never generated, so NULL is incompatible).
  static bool ValueCompatible(const Value& value, DataType type);

  /// True if the catalog holds a PK-FK edge between the two tables, scanned
  /// directly from the FK list (not via Catalog::AreJoinable).
  bool HasForeignKeyEdge(int table_a, int table_b) const;

 private:
  void LintSelectInto(const SelectQuery& q, int depth,
                      std::vector<LintIssue>* out) const;
  void LintWhereInto(const WhereClause& where,
                     const std::vector<int>& scope_tables, int depth,
                     std::vector<LintIssue>* out) const;
  void CheckColumn(const ColumnRef& col, const std::vector<int>& scope_tables,
                   const char* where, std::vector<LintIssue>* out) const;
  bool ColumnValid(const ColumnRef& col) const;
  DataType TypeOf(const ColumnRef& col) const;
  std::string ColumnName(const ColumnRef& col) const;

  const Catalog* catalog_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_ANALYSIS_SQL_LINTER_H_
