#include "analysis/fsm_analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "analysis/state_key.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

namespace {

/// Cap on stored violation examples; the counter keeps the true total.
constexpr int kMaxStoredViolations = 100;

void JsonEscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDefectsJson(const char* name, const std::vector<FsmDefect>& list,
                       std::string* out) {
  *out += StrFormat("\"%s\":[", name);
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += "{\"kind\":\"";
    JsonEscapeInto(list[i].kind, out);
    *out += "\",\"phase\":\"";
    JsonEscapeInto(list[i].phase, out);
    *out += "\",\"detail\":\"";
    JsonEscapeInto(list[i].detail, out);
    *out += "\",\"prefix\":\"";
    JsonEscapeInto(list[i].prefix, out);
    *out += "\"}";
  }
  out->push_back(']');
}

bool StringLike(DataType t) {
  return t == DataType::kString || t == DataType::kCategorical;
}

/// Region-based exploration engine.
///
/// A "region" is a sub-graph whose masks read only a summarizable slice of
/// the surrounding context, explored once under a canonical parent and
/// spliced into every other parent as summary edges. Two region kinds:
///
///  - Subquery frames: the masks inside a pushed frame read nothing from
///    the parent except (purpose, outer lhs / pinned table, depth) and the
///    remaining token slack — verified against every mask read-site in
///    generation_fsm.cc. A frame summary records one completion witness
///    per distinct post-pop abstract state.
///  - Top-level WHERE clauses: the where machinery (kWherePred through
///    kAfterPredicate) reads the scope set, the item mix counts, the query
///    type and its own predicate state, but never the plain-item
///    identities that dominate the top-frame key. A clause summary records
///    one witness per distinct (interior state, exit action) pair, so
///    every distinct post-exit state of every parent is still reached.
///
/// Both remove a parent-context multiplier that otherwise puts the bigger
/// catalogs out of reach (job_like: 3.4M states naive, ~100k summarized).
class Explorer {
 public:
  Explorer(const Database* db, const Vocabulary* vocab,
           const QueryProfile& profile, const AnalyzerOptions& options,
           SqlLinter* linter, FsmAnalysisReport* report)
      : db_(db),
        vocab_(vocab),
        profile_(profile),
        options_(options),
        linter_(linter),
        report_(report),
        // Under the unbounded regime slack is clamped constant
        // (state_key.cc), so regions are shared across entry points; a
        // small exact budget instead leaks the parent's token count into
        // the region, so every summary key also carries the entry slack.
        slack_keyed_(profile.max_tokens < 1024) {}

  void Run() {
    std::vector<int> empty;
    ExploreRegion(empty, 1, RegionMode::kMain, nullptr, nullptr);
    report_->exhausted = !aborted_;
    report_->num_summaries =
        static_cast<int>(summaries_.size() + clause_summaries_.size());
  }

 private:
  enum class RegionMode { kMain, kFrame, kClauseWhere, kClauseHaving };

  /// Abstract-state record; the prefix is reconstructed by walking parents.
  /// A summary edge contributes its entry action plus the witness tokens.
  struct StateRec {
    int parent = -1;
    int action = -1;
    int witness = -1;  ///< index into witnesses_, or -1 for a plain edge
    uint32_t prefix_len = 0;
  };
  /// One witness (tokens after '(' through the popping ')') per distinct
  /// post-exit abstract state; empty iff the frame can never pop. Several
  /// witnesses only arise under the budget regime, where exits of
  /// different lengths leave the parent with different remaining slack.
  struct Summary {
    std::vector<int> exit_witnesses;
  };
  /// (purpose, lhs table / pinned table, lhs column, frame depth, entry
  /// slack). Entry slack is 0 under the unbounded regime so regions are
  /// shared across entry points; under an exact budget it keys the region
  /// to the remaining token allowance, which its masks can observe.
  using SummaryKey = std::tuple<int, int, int, int, int>;
  /// Every way a clause region can be left, one witness per distinct
  /// post-exit abstract state (computed under the canonical parent; the
  /// parent part of the key is constant within a region, so two exits with
  /// equal canonical post-keys carry identical mask-relevant state and
  /// land on equal post-keys under every other parent too). Witness tokens
  /// run from just after the clause keyword through the exit action.
  struct ClauseSummary {
    std::vector<int> exit_witnesses;
  };

  /// The WHERE-clause interior: phases whose masks read the scope set, the
  /// item-mix counts, the query type and the predicate state, but never
  /// the plain-item identities (see the mask read-sites around
  /// kAfterPredicate in generation_fsm.cc: GROUP BY / ORDER BY / EOF exits
  /// are gated on ItemMix and can_order_by, both count-based).
  static bool InWhereClause(BuildPhase p) {
    return p == BuildPhase::kWherePred || p == BuildPhase::kAfterNot ||
           p == BuildPhase::kExistsOpen || p == BuildPhase::kWhereOp ||
           p == BuildPhase::kWhereRhs || p == BuildPhase::kWhereLikeRhs ||
           p == BuildPhase::kInOpen || p == BuildPhase::kAfterPredicate;
  }

  /// The HAVING interior: agg / column / operator / value selection reads
  /// only the scope set and its own partial predicate.
  static bool InHavingClause(BuildPhase p) {
    return p == BuildPhase::kHavingAgg || p == BuildPhase::kHavingColumn ||
           p == BuildPhase::kHavingOp || p == BuildPhase::kHavingValue;
  }

  static bool InClause(RegionMode mode, BuildPhase p) {
    return mode == RegionMode::kClauseWhere ? InWhereClause(p)
                                            : InHavingClause(p);
  }

  /// Everything a clause interior can observe from its context. Subquery
  /// wheres read their purpose (close gating) and depth (deeper pushes),
  /// but not the outer lhs — that is only consulted at kFromTable /
  /// kSelectItem — so IN-subqueries with different lhs share a region.
  std::string ClauseKey(const AstBuilder& builder, RegionMode mode) const {
    const BuildFrame& f = builder.frame();
    std::string k = mode == RegionMode::kClauseWhere ? "W" : "H";
    k += std::to_string(static_cast<int>(builder.ast().type));
    k.push_back('p');
    k += std::to_string(static_cast<int>(f.purpose));
    k.push_back('d');
    k += std::to_string(builder.frames().size());
    k.push_back(':');
    std::vector<int> scope = f.scope_tables;
    std::sort(scope.begin(), scope.end());
    for (int t : scope) {
      k += std::to_string(t);
      k.push_back(',');
    }
    if (mode == RegionMode::kClauseWhere) {
      int n_plain = 0;
      int n_agg = 0;
      if (f.query != nullptr) {
        for (const SelectItem& it : f.query->items) {
          (it.agg == AggFunc::kNone ? n_plain : n_agg) += 1;
        }
      }
      k.push_back(':');
      k += std::to_string(n_plain);
      k.push_back('/');
      k += std::to_string(n_agg);
    }
    if (slack_keyed_) {
      k.push_back('t');
      k += std::to_string(builder.tokens().size());
    }
    return k;
  }

  GenerationFsm Replay(const std::vector<int>& actions) {
    GenerationFsm fsm(db_, vocab_, profile_);
    for (int a : actions) {
      Status st = fsm.Step(a);
      LSG_CHECK(st.ok());  // every recorded edge was once offered + stepped
    }
    return fsm;
  }

  std::string PrefixText(const std::vector<int>& prefix) const {
    std::string out;
    for (int id : prefix) {
      if (!out.empty()) out.push_back(' ');
      out += vocab_->token(id).text;
    }
    return out;
  }

  void AddDefect(std::vector<FsmDefect>* out, const char* kind,
                 BuildPhase phase, std::string detail,
                 const std::vector<int>& prefix) {
    if (static_cast<int>(out->size()) >= kMaxStoredViolations) return;
    FsmDefect d;
    d.kind = kind;
    d.phase = BuildPhaseName(phase);
    d.detail = std::move(detail);
    d.prefix = PrefixText(prefix);
    out->push_back(std::move(d));
  }

  std::vector<int> RepresentativeActions(const std::vector<uint8_t>& mask) {
    std::vector<int> reps;
    // Value tokens are grouped per owning column: masks never read literal
    // contents, so one representative covers the whole class (the per-token
    // semantic checks in CheckMask still see every member).
    std::set<std::tuple<int, int, bool>> value_classes;
    for (int id = 0; id < static_cast<int>(mask.size()); ++id) {
      if (mask[id] == 0) continue;
      const Token& t = vocab_->token(id);
      if (t.kind == TokenKind::kValue) {
        auto cls = std::make_tuple(t.value_column_table, t.value_column_idx,
                                   t.is_pattern);
        if (!value_classes.insert(cls).second) continue;
      }
      reps.push_back(id);
    }
    return reps;
  }

  void CheckMask(const GenerationFsm& fsm, const std::vector<uint8_t>& mask,
                 const std::vector<int>& prefix);

  const Summary& GetSummary(const SummaryKey& key,
                            const std::vector<int>& entry_prefix) {
    auto it = summaries_.find(key);
    if (it != summaries_.end()) return it->second;
    Summary sum;
    // Depth strictly increases across nested GetSummary calls, so the
    // recursion is bounded by max_nesting_depth and cannot revisit key.
    ExploreRegion(entry_prefix, static_cast<size_t>(std::get<3>(key)),
                  RegionMode::kFrame, &sum, nullptr);
    return summaries_.emplace(key, sum).first->second;
  }

  const ClauseSummary& GetClauseSummary(
      const std::string& key, RegionMode mode, size_t depth,
      const std::vector<int>& entry_prefix) {
    auto it = clause_summaries_.find(key);
    if (it != clause_summaries_.end()) return it->second;
    ClauseSummary sum;
    ExploreRegion(entry_prefix, depth, mode, nullptr, &sum);
    return clause_summaries_.emplace(key, sum).first->second;
  }

  void ExploreRegion(const std::vector<int>& entry_prefix,
                     size_t region_depth, RegionMode mode, Summary* out,
                     ClauseSummary* clause_out);

  const Database* db_;
  const Vocabulary* vocab_;
  const QueryProfile& profile_;
  const AnalyzerOptions& options_;
  SqlLinter* linter_;
  FsmAnalysisReport* report_;
  const bool slack_keyed_;

  bool aborted_ = false;
  long long total_states_ = 0;
  std::map<SummaryKey, Summary> summaries_;
  std::map<std::string, ClauseSummary> clause_summaries_;
  std::vector<std::vector<int>> witnesses_;
};

void Explorer::ExploreRegion(const std::vector<int>& entry_prefix,
                             size_t region_depth, RegionMode mode,
                             Summary* out, ClauseSummary* clause_out) {
  std::vector<StateRec> states;
  std::unordered_map<std::string, int> ids;
  std::vector<std::pair<int, int>> edges;
  std::vector<uint8_t> is_stuck;
  std::vector<uint8_t> can_exit;
  std::set<std::string> exits_seen;  // post-exit keys already witnessed
  int accept_id = -1;                // main region's DONE node

  auto intern = [&](std::string key, int parent, int action, int witness,
                    uint32_t plen, bool* inserted_out) {
    auto [it, inserted] =
        ids.emplace(std::move(key), static_cast<int>(states.size()));
    if (inserted) {
      StateRec rec;
      rec.parent = parent;
      rec.action = action;
      rec.witness = witness;
      rec.prefix_len = plen;
      states.push_back(rec);
      is_stuck.push_back(0);
      can_exit.push_back(0);
      if (++total_states_ > options_.max_states) aborted_ = true;
    }
    if (inserted_out != nullptr) *inserted_out = inserted;
    return it->second;
  };

  auto prefix_of = [&](int state_id) {
    std::vector<int> actions(states[state_id].prefix_len);
    size_t end = actions.size();
    for (int s = state_id; states[s].parent >= 0; s = states[s].parent) {
      const StateRec& r = states[s];
      if (r.witness >= 0) {
        const std::vector<int>& w = witnesses_[r.witness];
        for (size_t i = w.size(); i > 0; --i) actions[--end] = w[i - 1];
      }
      actions[--end] = r.action;
    }
    LSG_CHECK(end == entry_prefix.size());
    std::copy(entry_prefix.begin(), entry_prefix.end(), actions.begin());
    return actions;
  };

  {
    GenerationFsm root = Replay(entry_prefix);
    StateRec rec;
    rec.prefix_len = static_cast<uint32_t>(entry_prefix.size());
    std::string key = AbstractStateKey(root.builder(), profile_);
    ids.emplace(std::move(key), 0);
    states.push_back(rec);
    is_stuck.push_back(0);
    can_exit.push_back(0);
    ++total_states_;
  }

  for (int s = 0; s < static_cast<int>(states.size()) && !aborted_; ++s) {
    if (s == accept_id) continue;
    const std::vector<int> prefix = prefix_of(s);
    report_->max_prefix_tokens =
        std::max(report_->max_prefix_tokens, static_cast<int>(prefix.size()));
    GenerationFsm fsm = Replay(prefix);
    const std::vector<uint8_t>& mask = fsm.ValidActions();

    bool any = false;
    for (int id = 0; id < static_cast<int>(mask.size()); ++id) {
      if (mask[id] != 0) {
        report_->offered[id] = 1;
        any = true;
      }
    }
    if (!any) {
      // No legal action mid-episode: the generator is wedged here.
      ++report_->num_stuck;
      is_stuck[s] = 1;
      if (static_cast<int>(report_->stuck_examples.size()) <
          options_.max_examples) {
        AddDefect(&report_->stuck_examples, "stuck-state",
                  fsm.builder().phase(), "empty action mask mid-episode",
                  prefix);
      }
      continue;
    }

    CheckMask(fsm, mask, prefix);

    for (int a : RepresentativeActions(mask)) {
      GenerationFsm next = Replay(prefix);
      Status st = next.Step(a);
      if (!st.ok()) {
        ++report_->num_violations;
        AddDefect(&report_->violations, "mask-offers-illegal-token",
                  fsm.builder().phase(),
                  "builder rejected offered token " + vocab_->token(a).text +
                      ": " + st.message(),
                  prefix);
        continue;
      }
      const size_t next_depth = next.builder().frames().size();

      if (mode == RegionMode::kFrame && !next.done() &&
          next_depth < region_depth) {
        // ')' popped this region's frame: a completion of the region, one
        // witness per distinct post-exit abstract state (the parent part
        // of the key is constant within a region, so the dedup transfers
        // to every other parent; see ClauseSummary).
        can_exit[s] = 1;
        if (out != nullptr &&
            exits_seen.insert(AbstractStateKey(next.builder(), profile_))
                .second) {
          std::vector<int> w(prefix.begin() + entry_prefix.size(),
                             prefix.end());
          w.push_back(a);
          out->exit_witnesses.push_back(static_cast<int>(witnesses_.size()));
          witnesses_.push_back(std::move(w));
        }
        continue;
      }

      if (!next.done() && next_depth > region_depth) {
        // '(' pushed a subquery frame: splice its summary instead of
        // exploring the product with this parent context.
        const BuildFrame& nf = next.builder().frame();
        int ka = -1;
        int kb = -1;
        if (nf.purpose == FramePurpose::kInSub) {
          ka = nf.outer_lhs.table_idx;
          kb = nf.outer_lhs.column_idx;
        } else if (nf.purpose == FramePurpose::kInsertSource) {
          ka = nf.pinned_table;
        }
        std::vector<int> entry = prefix;
        entry.push_back(a);
        const int slack =
            slack_keyed_ ? profile_.max_tokens - static_cast<int>(entry.size())
                         : 0;
        SummaryKey skey{static_cast<int>(nf.purpose), ka, kb,
                        static_cast<int>(next_depth), slack};
        const Summary& sum = GetSummary(skey, entry);
        if (aborted_) break;
        // An empty summary means the subtree cannot pop; its region
        // already reported every interior state as dead, so no parent
        // edge is added.
        for (int w : sum.exit_witnesses) {
          const std::vector<int>& wt = witnesses_[w];
          std::vector<int> full = entry;
          full.insert(full.end(), wt.begin(), wt.end());
          GenerationFsm post = Replay(full);
          LSG_CHECK(post.builder().frames().size() == region_depth &&
                    !post.done());
          int id = intern(AbstractStateKey(post.builder(), profile_), s, a,
                          w, static_cast<uint32_t>(full.size()), nullptr);
          edges.emplace_back(s, id);
        }
        continue;
      }

      if ((mode == RegionMode::kClauseWhere ||
           mode == RegionMode::kClauseHaving) &&
          (next.done() || next_depth != region_depth ||
           !InClause(mode, next.builder().phase()))) {
        // This action leaves the clause interior: record one witness per
        // distinct post-exit abstract state so a parent can reconstruct
        // every distinct continuation.
        can_exit[s] = 1;
        if (clause_out != nullptr &&
            exits_seen.insert(AbstractStateKey(next.builder(), profile_))
                .second) {
          std::vector<int> w(prefix.begin() + entry_prefix.size(),
                             prefix.end());
          w.push_back(a);
          clause_out->exit_witnesses.push_back(
              static_cast<int>(witnesses_.size()));
          witnesses_.push_back(std::move(w));
        }
        continue;
      }

      RegionMode clause_mode = RegionMode::kMain;  // kMain = no clause
      if ((mode == RegionMode::kMain || mode == RegionMode::kFrame) &&
          !next.done() && next_depth == region_depth) {
        const BuildPhase np = next.builder().phase();
        const BuildPhase cp = fsm.builder().phase();
        if (InWhereClause(np) && !InWhereClause(cp)) {
          clause_mode = RegionMode::kClauseWhere;
        } else if (InHavingClause(np) && !InHavingClause(cp)) {
          clause_mode = RegionMode::kClauseHaving;
        }
      }
      if (clause_mode != RegionMode::kMain) {
        // Clause entered in this region's frame: splice the clause
        // summary's exits instead of re-walking its machinery under every
        // plain-item / having-column / subquery-lhs context.
        std::vector<int> entry = prefix;
        entry.push_back(a);
        const std::string ck = ClauseKey(next.builder(), clause_mode);
        const ClauseSummary& cs =
            GetClauseSummary(ck, clause_mode, region_depth, entry);
        if (aborted_) break;
        for (int w : cs.exit_witnesses) {
          const std::vector<int>& wt = witnesses_[w];
          std::vector<int> full = entry;
          full.insert(full.end(), wt.begin(), wt.end());
          GenerationFsm post = Replay(full);
          if (!post.done() &&
              post.builder().frames().size() < region_depth) {
            // A subquery frame's WHERE always exits by closing the frame,
            // so the spliced exit doubles as this region's completion.
            can_exit[s] = 1;
            if (out != nullptr &&
                exits_seen
                    .insert(AbstractStateKey(post.builder(), profile_))
                    .second) {
              std::vector<int> fw(full.begin() + entry_prefix.size(),
                                  full.end());
              out->exit_witnesses.push_back(
                  static_cast<int>(witnesses_.size()));
              witnesses_.push_back(std::move(fw));
            }
            continue;
          }
          bool inserted = false;
          int id = intern(AbstractStateKey(post.builder(), profile_), s, a,
                          w, static_cast<uint32_t>(full.size()), &inserted);
          if (inserted && post.done()) accept_id = id;
          edges.emplace_back(s, id);
          if (post.done()) {
            ++report_->num_accepting_edges;
            if (options_.lint_accepting) {
              for (const LintIssue& issue :
                   linter_->Lint(post.builder().ast())) {
                ++report_->num_violations;
                AddDefect(&report_->violations, LintRuleName(issue.rule),
                          BuildPhase::kDone, issue.message, full);
              }
            }
          }
        }
        continue;
      }

      bool inserted = false;
      int id = intern(AbstractStateKey(next.builder(), profile_), s, a, -1,
                      static_cast<uint32_t>(prefix.size()) + 1, &inserted);
      if (inserted && next.done()) accept_id = id;
      edges.emplace_back(s, id);
      if (next.done()) {
        ++report_->num_accepting_edges;
        if (options_.lint_accepting) {
          for (const LintIssue& issue :
               linter_->Lint(next.builder().ast())) {
            ++report_->num_violations;
            std::vector<int> witness = prefix;
            witness.push_back(a);
            AddDefect(&report_->violations, LintRuleName(issue.rule),
                      BuildPhase::kDone, issue.message, witness);
          }
        }
      }
    }
  }

  report_->num_states += static_cast<int>(states.size());
  report_->num_edges += static_cast<int>(edges.size());
  if (aborted_) return;

  // Reverse fixpoint: a state is live iff some successor is, seeded by the
  // accepting DONE node (main region) or the popping exits (subquery
  // region). Stuck states have no out-edges and are counted separately.
  std::vector<uint8_t> live = can_exit;
  if (accept_id >= 0) live[accept_id] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      if (live[it->second] != 0 && live[it->first] == 0) {
        live[it->first] = 1;
        changed = true;
      }
    }
  }
  for (int s = 0; s < static_cast<int>(states.size()); ++s) {
    if (s == accept_id || is_stuck[s] != 0 || live[s] != 0) continue;
    ++report_->num_dead;
    if (static_cast<int>(report_->dead_examples.size()) <
        options_.max_examples) {
      const std::vector<int> prefix = prefix_of(s);
      GenerationFsm fsm = Replay(prefix);
      const char* why = "no path from here reaches an accepting EOF";
      if (mode == RegionMode::kFrame) {
        why = "no path from here closes the subquery";
      } else if (mode == RegionMode::kClauseWhere ||
                 mode == RegionMode::kClauseHaving) {
        why = "no path from here leaves the clause";
      }
      AddDefect(&report_->dead_examples, "dead-state", fsm.builder().phase(),
                why, prefix);
    }
  }
}

void Explorer::CheckMask(const GenerationFsm& fsm,
                         const std::vector<uint8_t>& mask,
                         const std::vector<int>& prefix) {
  const BuildFrame& f = fsm.builder().frame();
  const Catalog& cat = db_->catalog();
  auto flag = [&](const char* kind, std::string detail) {
    ++report_->num_violations;
    AddDefect(&report_->violations, kind, f.phase, std::move(detail),
              prefix);
  };
  auto in_scope = [&](int table_idx) {
    return std::find(f.scope_tables.begin(), f.scope_tables.end(),
                     table_idx) != f.scope_tables.end();
  };
  auto type_of = [&](const ColumnRef& c) {
    return cat.table(c.table_idx).column(c.column_idx).type;
  };
  auto check_scope_column = [&](const Token& t) {
    if (!in_scope(t.column.table_idx)) {
      flag(LintRuleName(LintRule::kColumnOutOfScope),
           "offered column " + t.text + " outside frame scope");
      return false;
    }
    return true;
  };
  auto owner_of = [](const Token& t) {
    return ColumnRef{t.value_column_table, t.value_column_idx};
  };

  for (int id = 0; id < static_cast<int>(mask.size()); ++id) {
    if (mask[id] == 0) continue;
    const Token& t = vocab_->token(id);
    switch (f.phase) {
      case BuildPhase::kFromTable:
        if (t.kind == TokenKind::kTable &&
            f.purpose == FramePurpose::kInSub) {
          // IN-subquery FROM tables must hold a column comparable to the
          // outer lhs, or the inner projection is doomed to mismatch.
          DataType lhs = type_of(f.outer_lhs);
          bool ok = false;
          const TableSchema& ts = cat.table(t.table_idx);
          for (size_t ci = 0; ci < ts.num_columns() && !ok; ++ci) {
            ok = SqlLinter::TypesComparable(lhs, ts.column(ci).type);
          }
          if (!ok) {
            flag(LintRuleName(LintRule::kSubqueryTypeMismatch),
                 "IN subquery offered table " + t.text +
                     " with no column comparable to the outer lhs");
          }
        }
        break;

      case BuildPhase::kJoinTable:
        if (t.kind == TokenKind::kTable) {
          if (in_scope(t.table_idx)) {
            flag(LintRuleName(LintRule::kJoinNotPkFk),
                 "JOIN offered already-joined table " + t.text);
            break;
          }
          bool edge = false;
          for (int prev : f.scope_tables) {
            if (linter_->HasForeignKeyEdge(prev, t.table_idx)) {
              edge = true;
              break;
            }
          }
          if (!edge) {
            flag(LintRuleName(LintRule::kJoinNotPkFk),
                 "JOIN offered table " + t.text +
                     " with no PK-FK edge to the chain");
          }
        }
        break;

      case BuildPhase::kSelectItem:
        if (t.kind == TokenKind::kColumn) {
          if (check_scope_column(t) &&
              f.purpose == FramePurpose::kInSub &&
              !SqlLinter::TypesComparable(type_of(f.outer_lhs),
                                          type_of(t.column))) {
            flag(LintRuleName(LintRule::kSubqueryTypeMismatch),
                 "IN subquery offered projection column " + t.text +
                     " not comparable to the outer lhs");
          }
        }
        break;

      case BuildPhase::kAfterSelectItem:
      case BuildPhase::kWherePred:
      case BuildPhase::kGroupByColumn:
      case BuildPhase::kAfterGroupBy:
      case BuildPhase::kOrderByColumn:
      case BuildPhase::kAfterOrderBy:
        if (t.kind == TokenKind::kColumn) check_scope_column(t);
        break;

      case BuildPhase::kAggColumn:
        if (t.kind == TokenKind::kColumn && check_scope_column(t) &&
            !SqlLinter::AggregateAllowed(f.pending_agg, type_of(t.column))) {
          flag(LintRuleName(LintRule::kAggregateTypeMismatch),
               StrFormat("%s offered over non-numeric column %s",
                         AggFuncName(f.pending_agg), t.text.c_str()));
        }
        break;

      case BuildPhase::kWhereOp: {
        DataType lhs = type_of(f.pending_column);
        if (t.kind == TokenKind::kOperator &&
            !SqlLinter::OperatorAllowed(t.op, lhs)) {
          flag(LintRuleName(LintRule::kOperatorTypeMismatch),
               StrFormat("operator %s offered for %s lhs", t.text.c_str(),
                         DataTypeName(lhs)));
        }
        if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kLike &&
            !StringLike(lhs)) {
          flag(LintRuleName(LintRule::kLikeOnNonString),
               "LIKE offered for non-string lhs");
        }
        break;
      }

      case BuildPhase::kWhereRhs: {
        DataType lhs = type_of(f.pending_column);
        if (t.kind == TokenKind::kValue) {
          if (!(owner_of(t) == f.pending_column)) {
            flag(LintRuleName(LintRule::kValueTypeMismatch),
                 "rhs literal " + t.text + " not sampled from the lhs column");
          } else if (!SqlLinter::ValueCompatible(t.value, lhs)) {
            flag(LintRuleName(LintRule::kValueTypeMismatch),
                 "rhs literal " + t.text + " incompatible with lhs type");
          }
        }
        if (t.kind == TokenKind::kKeyword &&
            t.keyword == Keyword::kOpenParen && !IsNumeric(lhs)) {
          flag(LintRuleName(LintRule::kSubqueryTypeMismatch),
               "scalar subquery offered for non-numeric lhs");
        }
        break;
      }

      case BuildPhase::kWhereLikeRhs:
        if (t.kind == TokenKind::kValue &&
            (!t.is_pattern || !(owner_of(t) == f.pending_column) ||
             !t.value.is_string())) {
          flag(LintRuleName(LintRule::kLikeOnNonString),
               "non-pattern literal " + t.text + " offered after LIKE");
        }
        break;

      case BuildPhase::kHavingColumn:
        // Any of the five aggregates may be pending, so the column must
        // support the strictest (SUM), i.e. be numeric.
        if (t.kind == TokenKind::kColumn && check_scope_column(t) &&
            !SqlLinter::AggregateAllowed(AggFunc::kSum, type_of(t.column))) {
          flag(LintRuleName(LintRule::kAggregateTypeMismatch),
               "HAVING offered non-numeric column " + t.text);
        }
        break;

      case BuildPhase::kHavingValue: {
        const SelectQuery* q = f.query;
        if (t.kind == TokenKind::kValue && q != nullptr &&
            q->having.has_value()) {
          if (!(owner_of(t) == q->having->column) || !t.value.is_numeric()) {
            flag(LintRuleName(LintRule::kValueTypeMismatch),
                 "HAVING rhs literal " + t.text +
                     " not numeric or not from the aggregated column");
          }
        }
        break;
      }

      case BuildPhase::kInsertValue:
        if (t.kind == TokenKind::kValue) {
          const InsertQuery* ins = fsm.builder().ast().insert.get();
          const int next = static_cast<int>(ins->values.size());
          if (t.value_column_table != ins->table_idx ||
              t.value_column_idx != next) {
            flag(LintRuleName(LintRule::kInsertArity),
                 "INSERT offered literal " + t.text +
                     " for the wrong column position");
          } else if (!SqlLinter::ValueCompatible(
                         t.value,
                         cat.table(ins->table_idx).column(next).type)) {
            flag(LintRuleName(LintRule::kValueTypeMismatch),
                 "INSERT literal " + t.text + " incompatible with column");
          }
        }
        break;

      case BuildPhase::kUpdateSetColumn:
        if (t.kind == TokenKind::kColumn) {
          const UpdateQuery* upd = fsm.builder().ast().update.get();
          if (t.column.table_idx != upd->table_idx) {
            flag(LintRuleName(LintRule::kColumnOutOfScope),
                 "UPDATE SET offered column " + t.text +
                     " outside the target table");
          } else if (cat.table(upd->table_idx)
                         .column(t.column.column_idx)
                         .is_primary_key) {
            flag(LintRuleName(LintRule::kUpdatePrimaryKey),
                 "UPDATE SET offered primary-key column " + t.text);
          }
        }
        break;

      case BuildPhase::kUpdateSetValue:
        if (t.kind == TokenKind::kValue) {
          const UpdateQuery* upd = fsm.builder().ast().update.get();
          if (!(owner_of(t) == upd->set_column) ||
              !SqlLinter::ValueCompatible(t.value,
                                          type_of(upd->set_column))) {
            flag(LintRuleName(LintRule::kValueTypeMismatch),
                 "UPDATE SET literal " + t.text + " incompatible with column");
          }
        }
        break;

      default:
        break;
    }
  }
}

}  // namespace

std::vector<int> FsmAnalysisReport::NeverOfferedTokens() const {
  std::vector<int> out;
  for (size_t id = 0; id < offered.size(); ++id) {
    if (offered[id] == 0) out.push_back(static_cast<int>(id));
  }
  return out;
}

std::string FsmAnalysisReport::Summary(const Vocabulary* vocab) const {
  std::string s = StrFormat(
      "profile=%s states=%d edges=%d accepting=%d summaries=%d exhausted=%s\n"
      "dead=%d stuck=%d violations=%d max-prefix=%d never-offered=%zu\n",
      profile_name.empty() ? "?" : profile_name.c_str(), num_states,
      num_edges, num_accepting_edges, num_summaries,
      exhausted ? "yes" : "NO", num_dead, num_stuck, num_violations,
      max_prefix_tokens, NeverOfferedTokens().size());
  auto dump = [&s](const char* label, const std::vector<FsmDefect>& list) {
    for (const FsmDefect& d : list) {
      s += StrFormat("  %s %s at %s: %s\n    prefix: %s\n", label,
                     d.kind.c_str(), d.phase.c_str(), d.detail.c_str(),
                     d.prefix.c_str());
    }
  };
  dump("[violation]", violations);
  dump("[dead]", dead_examples);
  dump("[stuck]", stuck_examples);
  if (vocab != nullptr) {
    std::vector<int> never = NeverOfferedTokens();
    for (size_t i = 0; i < never.size() && i < 16; ++i) {
      s += StrFormat("  [never-offered] id=%d %s\n", never[i],
                     vocab->token(never[i]).text.c_str());
    }
    if (never.size() > 16) {
      s += StrFormat("  [never-offered] ... %zu more\n", never.size() - 16);
    }
  }
  return s;
}

std::string FsmAnalysisReport::ToJson() const {
  std::string out = "{\"profile\":\"";
  JsonEscapeInto(profile_name, &out);
  out += StrFormat(
      "\",\"exhausted\":%s,\"states\":%d,\"edges\":%d,"
      "\"accepting_edges\":%d,\"summaries\":%d,\"dead\":%d,\"stuck\":%d,"
      "\"violations\":%d,\"max_prefix_tokens\":%d,\"never_offered\":%zu,",
      exhausted ? "true" : "false", num_states, num_edges,
      num_accepting_edges, num_summaries, num_dead, num_stuck,
      num_violations, max_prefix_tokens, NeverOfferedTokens().size());
  AppendDefectsJson("violation_examples", violations, &out);
  out.push_back(',');
  AppendDefectsJson("dead_examples", dead_examples, &out);
  out.push_back(',');
  AppendDefectsJson("stuck_examples", stuck_examples, &out);
  out.push_back('}');
  return out;
}

FsmAnalyzer::FsmAnalyzer(const Database* db, const Vocabulary* vocab,
                         AnalyzerOptions options)
    : db_(db),
      vocab_(vocab),
      options_(options),
      profile_(options.profile),
      linter_(&db->catalog()) {
  LSG_CHECK(db != nullptr && vocab != nullptr);
  if (options_.clamp_bounds) {
    profile_.max_joins = std::min(profile_.max_joins, 2);
    profile_.max_select_items = std::min(profile_.max_select_items, 2);
    profile_.max_predicates = std::min(profile_.max_predicates, 2);
    profile_.max_tokens =
        options_.budget_tokens > 0 ? options_.budget_tokens : 4096;
  }
}

StatusOr<FsmAnalysisReport> FsmAnalyzer::Analyze() {
  FsmAnalysisReport report;
  report.offered.assign(vocab_->size(), 0);
  Explorer explorer(db_, vocab_, profile_, options_, &linter_, &report);
  explorer.Run();
  return report;
}

}  // namespace lsg
