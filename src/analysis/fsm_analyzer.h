#ifndef LEARNEDSQLGEN_ANALYSIS_FSM_ANALYZER_H_
#define LEARNEDSQLGEN_ANALYSIS_FSM_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/sql_linter.h"
#include "common/status.h"
#include "fsm/generation_fsm.h"
#include "sql/vocabulary.h"
#include "storage/table.h"

namespace lsg {

/// Exploration bounds. The analyzer proves properties of the *exact* FSM
/// state graph under a (possibly clamped) profile — a small-scope argument:
/// every mask decision depends only on saturating counters (items, joins,
/// predicates, budget), so a rule gap reachable under large bounds is
/// already reachable once each counter can hit its gate, which the clamped
/// bounds guarantee (see DESIGN.md §6d).
struct AnalyzerOptions {
  /// Structural profile to explore under.
  QueryProfile profile;

  /// Clamp the profile to small-scope bounds (joins<=2, items<=2, preds<=2,
  /// nesting<=profile) before exploring. Disable only for experiments; the
  /// unclamped Full() graph is astronomically large.
  bool clamp_bounds = true;

  /// Token-budget regime (only with clamp_bounds): 0 analyzes under an
  /// effectively unbounded budget (structural properties; the count drops
  /// out of the state key), >0 sets an exact small budget so the
  /// tightness-pruning boundary itself is explored exhaustively.
  int budget_tokens = 0;

  /// Abort with exhausted=false once this many abstract states exist.
  int max_states = 400000;

  /// Lint the AST of every accepting state (differential check).
  bool lint_accepting = true;

  /// Cap on recorded example prefixes per defect class.
  int max_examples = 5;
};

/// One reachable defect: a semantic-rule violation, dead state, or stuck
/// state, with a replayable token-prefix witness.
struct FsmDefect {
  std::string kind;    ///< lint rule name, "dead-state", or "stuck-state"
  std::string phase;   ///< BuildPhaseName of the offending state
  std::string detail;  ///< human-readable description
  std::string prefix;  ///< token texts of the witness prefix
};

/// Result of one exhaustive exploration.
struct FsmAnalysisReport {
  std::string profile_name;   ///< label set by the caller (optional)
  bool exhausted = false;     ///< false if max_states was hit
  int num_states = 0;         ///< distinct abstract states (incl. accept)
  int num_edges = 0;
  int num_accepting_edges = 0;
  int num_dead = 0;           ///< reachable states that cannot accept
  int num_stuck = 0;          ///< non-terminal states with an empty mask
  int num_violations = 0;     ///< total semantic-rule violations found
  int num_summaries = 0;      ///< distinct subquery regions summarized
  int max_prefix_tokens = 0;  ///< longest witness prefix seen

  /// Reachable semantic-rule violations (mask-level + accept-time lint);
  /// capped examples — num_violations holds the true total.
  std::vector<FsmDefect> violations;
  /// Example dead / stuck states (subset, capped at max_examples).
  std::vector<FsmDefect> dead_examples;
  std::vector<FsmDefect> stuck_examples;

  /// offered[id] != 0 iff token id was legal in some explored state.
  std::vector<uint8_t> offered;
  /// Token ids never legal in any state under this profile.
  std::vector<int> NeverOfferedTokens() const;

  /// True iff the graph was fully explored with zero defects.
  bool Clean() const {
    return exhausted && num_dead == 0 && num_stuck == 0 &&
           num_violations == 0;
  }

  /// Multi-line human-readable summary.
  std::string Summary(const Vocabulary* vocab = nullptr) const;
  /// Single JSON object with all counters and defect lists.
  std::string ToJson() const;
};

/// Exhaustive BFS over the GenerationFsm state graph for one database.
///
/// States are abstracted with AbstractStateKey (a mask-bisimulation), so
/// exploring one representative per key covers every concrete generator
/// state. Under the unbounded-budget regime, subquery regions are explored
/// once per (purpose, outer-lhs, depth) and spliced into every parent
/// context as summary edges — a subquery's masks read nothing else from
/// its parent, so the summary is exact (interprocedural-style analysis).
/// At each state the analyzer re-checks the offered mask against the
/// SqlLinter's independently derived rule predicates (FK edges, operator /
/// aggregate / literal typing, scope), detects empty masks mid-episode, and
/// lints the AST of every accepting transition; afterwards a reverse
/// fixpoint over the edge list finds states that can never reach EOF.
class FsmAnalyzer {
 public:
  /// All pointers must outlive the analyzer.
  FsmAnalyzer(const Database* db, const Vocabulary* vocab,
              AnalyzerOptions options);

  /// Runs the exploration. Returns InvalidArgument only for unusable
  /// inputs; state-space blowup is reported via exhausted=false.
  StatusOr<FsmAnalysisReport> Analyze();

  /// The profile actually explored (after clamping).
  const QueryProfile& effective_profile() const { return profile_; }

 private:
  const Database* db_;
  const Vocabulary* vocab_;
  AnalyzerOptions options_;
  QueryProfile profile_;
  SqlLinter linter_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_ANALYSIS_FSM_ANALYZER_H_
