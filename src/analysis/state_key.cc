#include "analysis/state_key.h"

#include <algorithm>
#include <vector>

namespace lsg {

namespace {

void AppendInt(std::string* out, long long v) {
  out->append(std::to_string(v));
  out->push_back(',');
}

void AppendColumn(std::string* out, const ColumnRef& c) {
  AppendInt(out, c.table_idx);
  AppendInt(out, c.column_idx);
}

void AppendSortedColumns(std::string* out, std::vector<ColumnRef> cols) {
  std::sort(cols.begin(), cols.end(), [](const ColumnRef& a,
                                         const ColumnRef& b) {
    return a.table_idx != b.table_idx ? a.table_idx < b.table_idx
                                      : a.column_idx < b.column_idx;
  });
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  out->push_back('[');
  for (const ColumnRef& c : cols) AppendColumn(out, c);
  out->push_back(']');
}

/// True in the phases where the masks (or the transition into the next
/// mask-relevant state) read f.pending_column. Outside these phases the
/// field holds a stale value from the previous predicate, and keying on it
/// would split bisimilar states.
bool PendingColumnLive(BuildPhase p) {
  return p == BuildPhase::kWhereOp || p == BuildPhase::kWhereRhs ||
         p == BuildPhase::kWhereLikeRhs || p == BuildPhase::kInOpen;
}

/// The WHERE machinery: the only phases whose masks read the predicate
/// count (AND gating against max_predicates) or, under require_nested, the
/// query's HasNested bit (EOF / GROUP BY / ORDER BY gating at
/// kAfterPredicate). Once the clause is left neither is ever read again —
/// there is no way back into WHERE — so keying them later would multiply
/// bisimilar tails.
bool InWhereClause(BuildPhase p) {
  return p == BuildPhase::kWherePred || p == BuildPhase::kAfterNot ||
         p == BuildPhase::kExistsOpen || p == BuildPhase::kWhereOp ||
         p == BuildPhase::kWhereRhs || p == BuildPhase::kWhereLikeRhs ||
         p == BuildPhase::kInOpen || p == BuildPhase::kAfterPredicate;
}

/// Shared body of AbstractStateKey / StructuralStateKey. `structural`
/// drops the budget slack (the compiler stores one mask per budget regime
/// instead) and, when the profile can never open GROUP BY or ORDER BY,
/// also the plain select-item identities — the masks read those only to
/// seed groupby_remaining / orderby_candidates, so with both branches
/// closed the counts alone decide every mask and every transition.
std::string StateKeyImpl(const AstBuilder& builder,
                         const QueryProfile& profile, bool structural) {
  if (builder.done()) return "DONE";
  std::string k;
  k.reserve(96);

  if (!structural) {
    // The masks read the token count only through the two budget thresholds
    // (BudgetTight, subquery-tight), i.e. through the remaining slack. Slack
    // above 256 cannot reach the thresholds within any structurally bounded
    // episode (the longest clamped episode is far shorter), so all such
    // states are budget-equivalent and the counter drops out of the key.
    const int slack =
        profile.max_tokens - static_cast<int>(builder.tokens().size());
    AppendInt(&k, std::max(0, std::min(slack, 256)));
  }

  const QueryAst& ast = builder.ast();
  AppendInt(&k, static_cast<int>(ast.type));
  if (ast.insert != nullptr) {
    k.push_back('I');
    AppendInt(&k, ast.insert->table_idx);
    AppendInt(&k, static_cast<long long>(ast.insert->values.size()));
    AppendInt(&k, ast.insert->source != nullptr ? 1 : 0);
  }
  if (ast.update != nullptr) {
    k.push_back('U');
    AppendInt(&k, ast.update->table_idx);
    // SET column identity only matters while its value is being chosen.
    if (builder.phase() == BuildPhase::kUpdateSetValue) {
      AppendColumn(&k, ast.update->set_column);
    }
  }
  if (ast.del != nullptr) {
    k.push_back('D');
    AppendInt(&k, ast.del->table_idx);
  }

  const std::vector<BuildFrame>& frames = builder.frames();
  for (size_t fi = 0; fi < frames.size(); ++fi) {
    const BuildFrame& f = frames[fi];
    k.push_back('|');
    AppendInt(&k, static_cast<int>(f.purpose));
    AppendInt(&k, static_cast<int>(f.phase));
    // The masks read scope_tables purely as a set (membership tests, size,
    // and unordered iteration into a bitmap), so join order drops out of
    // the key. The real AST keeps the concrete order and the per-offer
    // kJoinTable check validates every extension against the whole set,
    // which equals "some earlier table" for any interleaving.
    k.push_back('s');
    std::vector<int> scope = f.scope_tables;
    std::sort(scope.begin(), scope.end());
    for (int t : scope) AppendInt(&k, t);

    // Pending pieces are keyed only while live (see MaskSelectFrame): a
    // consumed predicate leaves stale pending_* values behind that no mask
    // ever reads again, and a parent frame's pending lhs is frozen while a
    // subquery frame is active (the only part an inner mask reads is
    // mirrored into the subquery frame's own outer_lhs). pending_op /
    // pending_negated are never read by any mask at all (they only shape
    // the AST, which the accept-time lint and the per-state mask checks
    // already cover), so they are never keyed.
    const bool innermost = fi + 1 == frames.size();
    if (innermost && f.phase == BuildPhase::kAggColumn) {
      AppendInt(&k, static_cast<int>(f.pending_agg));
    }
    if (innermost && PendingColumnLive(f.phase)) {
      AppendColumn(&k, f.pending_column);
    }
    if (f.purpose == FramePurpose::kInSub) AppendColumn(&k, f.outer_lhs);
    if (f.purpose == FramePurpose::kInsertSource) {
      AppendInt(&k, f.pinned_table);
      AppendInt(&k, f.insert_next_col);
    }
    if (f.phase == BuildPhase::kGroupByColumn ||
        f.phase == BuildPhase::kAfterGroupBy) {
      AppendSortedColumns(&k, f.groupby_remaining);
    }
    if (f.phase == BuildPhase::kOrderByColumn ||
        f.phase == BuildPhase::kAfterOrderBy) {
      AppendSortedColumns(&k, f.orderby_candidates);
    }

    if (f.where != nullptr && InWhereClause(f.phase)) {
      k.push_back('w');
      AppendInt(&k, static_cast<long long>(f.where->predicates.size()));
    }
    if (f.query != nullptr) {
      const SelectQuery& q = *f.query;
      k.push_back('q');
      std::vector<ColumnRef> plain;
      int n_plain = 0, n_agg = 0;
      for (const SelectItem& it : q.items) {
        if (it.agg == AggFunc::kNone) {
          ++n_plain;
          plain.push_back(it.column);
        } else {
          ++n_agg;
        }
      }
      AppendInt(&k, n_plain);
      AppendInt(&k, n_agg);
      // Plain-item identities only steer GROUP BY / ORDER BY entry, which
      // exists solely in the outermost frame; subquery frames key on the
      // counts alone.
      if (fi == 0 && f.purpose == FramePurpose::kTopLevel) {
        if (!structural || profile.allow_group_by || profile.allow_order_by) {
          AppendSortedColumns(&k, std::move(plain));
        }
        // The HAVING column is read by the masks from the moment it is
        // chosen (operator typing at kHavingOp, value ownership at
        // kHavingValue) and never after kAfterHaving.
        if (q.having.has_value() &&
            (f.phase == BuildPhase::kHavingOp ||
             f.phase == BuildPhase::kHavingValue)) {
          k.push_back('h');
          AppendColumn(&k, q.having->column);
        }
        AppendInt(&k, q.order_by.empty() ? 0 : 1);
        // Only require_nested makes the masks read HasNested(), and only
        // while a WHERE clause can still be entered or extended; keying it
        // elsewhere would split states for no observable change.
        if (profile.require_nested &&
            (f.phase == BuildPhase::kSelectItem ||
             f.phase == BuildPhase::kAfterSelectItem ||
             InWhereClause(f.phase))) {
          AppendInt(&k, q.HasNested() ? 1 : 0);
        }
      }
    }
  }
  return k;
}

}  // namespace

std::string AbstractStateKey(const AstBuilder& builder,
                             const QueryProfile& profile) {
  return StateKeyImpl(builder, profile, /*structural=*/false);
}

std::string StructuralStateKey(const AstBuilder& builder,
                               const QueryProfile& profile) {
  return StateKeyImpl(builder, profile, /*structural=*/true);
}

}  // namespace lsg
