// lsggen — command-line front end for LearnedSQLGen.
//
// Examples:
//   lsggen --dataset tpch --metric card --range 50,100 --n 10
//   lsggen --dataset job --metric cost --point 500 --epochs 400 --explain
//   lsggen --dataset xuetang --metric card --range 20,80 --profile delete \
//          --csv out.csv --json out.json
//   lsggen --dataset tpch --metric card --range 50,100 --save model.bin
//   lsggen --dataset tpch --metric card --range 50,100 --load model.bin
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/generator.h"
#include "core/report_io.h"
#include "datasets/job_like.h"
#include "datasets/tpch_like.h"
#include "datasets/xuetang_like.h"
#include "optimizer/explain.h"

namespace {

void Usage() {
  std::printf(
      "lsggen — constraint-aware SQL generation (LearnedSQLGen)\n\n"
      "required:\n"
      "  --dataset tpch|job|xuetang   benchmark database to generate over\n"
      "  --metric card|cost           constrained metric\n"
      "  --point C | --range LO,HI    the constraint\n"
      "options:\n"
      "  --n N            satisfying queries to generate (default 10)\n"
      "  --epochs E       training epochs (default 300)\n"
      "  --batch B        episodes per update (default 16)\n"
      "  --scale F        dataset scale factor (default 1.0)\n"
      "  --seed S         RNG seed (default 2024)\n"
      "  --profile P      default|spj|full|insert|update|delete\n"
      "  --reinforce      use REINFORCE instead of actor-critic\n"
      "  --true-exec      reward from true execution, not the estimator\n"
      "  --explain        print an EXPLAIN plan per generated query\n"
      "  --csv PATH       write the generated workload as CSV\n"
      "  --json PATH      write the generated workload as JSON\n"
      "  --save PATH      save the trained model\n"
      "  --load PATH      load a model instead of training\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string dataset, metric_name, profile_name = "default";
  std::string csv_path, json_path, save_path, load_path;
  double point = -1, range_lo = -1, range_hi = -1, scale = 1.0;
  int n = 10, epochs = 300, batch = 16;
  uint64_t seed = 2024;
  bool use_reinforce = false, true_exec = false, explain = false;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--dataset") {
      dataset = need_value(i++);
    } else if (a == "--metric") {
      metric_name = need_value(i++);
    } else if (a == "--point") {
      point = std::atof(need_value(i++));
    } else if (a == "--range") {
      const char* v = need_value(i++);
      if (std::sscanf(v, "%lf,%lf", &range_lo, &range_hi) != 2) {
        std::fprintf(stderr, "--range expects LO,HI\n");
        return 2;
      }
    } else if (a == "--n") {
      n = std::atoi(need_value(i++));
    } else if (a == "--epochs") {
      epochs = std::atoi(need_value(i++));
    } else if (a == "--batch") {
      batch = std::atoi(need_value(i++));
    } else if (a == "--scale") {
      scale = std::atof(need_value(i++));
    } else if (a == "--seed") {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (a == "--profile") {
      profile_name = need_value(i++);
    } else if (a == "--csv") {
      csv_path = need_value(i++);
    } else if (a == "--json") {
      json_path = need_value(i++);
    } else if (a == "--save") {
      save_path = need_value(i++);
    } else if (a == "--load") {
      load_path = need_value(i++);
    } else if (a == "--reinforce") {
      use_reinforce = true;
    } else if (a == "--true-exec") {
      true_exec = true;
    } else if (a == "--explain") {
      explain = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    }
  }

  if (dataset.empty() || metric_name.empty() ||
      (point < 0 && (range_lo < 0 || range_hi < 0))) {
    Usage();
    return 2;
  }

  DatasetScale ds;
  ds.factor = scale;
  Database db;
  if (dataset == "tpch") {
    db = BuildTpchLike(ds);
  } else if (dataset == "job") {
    db = BuildJobLike(ds);
  } else if (dataset == "xuetang") {
    db = BuildXuetangLike(ds);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }

  ConstraintMetric metric;
  if (metric_name == "card") {
    metric = ConstraintMetric::kCardinality;
  } else if (metric_name == "cost") {
    metric = ConstraintMetric::kCost;
  } else {
    std::fprintf(stderr, "unknown metric %s\n", metric_name.c_str());
    return 2;
  }
  Constraint constraint = point >= 0
                              ? Constraint::Point(metric, point)
                              : Constraint::Range(metric, range_lo, range_hi);

  LearnedSqlGenOptions opts;
  opts.train_epochs = epochs;
  opts.trainer.batch_size = batch;
  opts.seed = seed;
  opts.use_reinforce = use_reinforce;
  if (true_exec) opts.feedback = FeedbackSource::kTrueExecution;
  if (profile_name == "spj") {
    opts.profile = QueryProfile::SpjOnly();
  } else if (profile_name == "full") {
    opts.profile = QueryProfile::Full();
  } else if (profile_name == "insert") {
    opts.profile = QueryProfile::InsertOnly();
  } else if (profile_name == "update") {
    opts.profile = QueryProfile::UpdateOnly();
  } else if (profile_name == "delete") {
    opts.profile = QueryProfile::DeleteOnly();
  } else if (profile_name != "default") {
    std::fprintf(stderr, "unknown profile %s\n", profile_name.c_str());
    return 2;
  }

  auto gen = LearnedSqlGen::Create(&db, opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "database %s: %zu tables, %zu rows; |A|=%d\n",
               dataset.c_str(), db.num_tables(), db.TotalRows(),
               (*gen)->vocab().size());

  Status st = load_path.empty() ? (*gen)->Train(constraint)
                                : (*gen)->LoadModel(constraint, load_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n",
                 load_path.empty() ? "train" : "load", st.ToString().c_str());
    return 1;
  }
  if (load_path.empty()) {
    std::fprintf(stderr, "trained %d epochs in %.2fs for %s\n", epochs,
                 (*gen)->last_train_seconds(),
                 constraint.ToString().c_str());
  }
  if (!save_path.empty()) {
    if (Status s = (*gen)->SaveModel(save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "model saved to %s\n", save_path.c_str());
  }

  auto report = (*gen)->GenerateSatisfied(n);
  if (!report.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%d satisfying queries in %d attempts (%.2fs inference)\n",
               report->satisfied, report->attempts,
               report->generate_seconds);
  for (const GeneratedQuery& q : report->queries) {
    if (explain) {
      std::printf("%s\n", Explain(q.ast, db.catalog(), (*gen)->estimator(),
                                  (*gen)->cost_model())
                              .c_str());
    } else {
      std::printf("%.4g\t%s\n", q.metric, q.sql.c_str());
    }
  }

  if (!csv_path.empty()) {
    if (Status s = WriteReportCsv(*report, csv_path); !s.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "workload written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    if (Status s = WriteReportJson(*report, json_path); !s.ok()) {
      std::fprintf(stderr, "json write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "workload written to %s\n", json_path.c_str());
  }
  return 0;
}
