// lsglint — static analysis front end: FSM state-graph verification and
// AST-level SQL semantic linting.
//
// `--fsm` exhaustively explores a dataset's GenerationFsm state graph under
// the fuzz profile rotation (small-scope clamped bounds) and reports dead
// states, stuck states, never-offered vocabulary tokens, and reachable
// semantic-rule violations. `--lint` checks SQL statements against the
// catalog-derived rule set; `--trace` lints the query rebuilt from an
// lsgfuzz-trace corpus artifact. `--check-all` runs the full matrix for CI.
//
// Examples:
//   lsglint --fsm tpch                      # all profiles, human summary
//   lsglint --fsm job --profile nested --json /tmp/job.json
//   lsglint --lint queries.sql --dataset tpch
//   lsglint --trace corpus/tpch-ep42-lint.trace
//   lsglint --check-all                     # CI gate over every dataset
//   lsglint --inject-bug agg-type           # mutation test: MUST detect
//
// Exit status: 0 clean (or injected bug detected), 1 findings (or injected
// bug missed), 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/fsm_analyzer.h"
#include "analysis/sql_linter.h"
#include "common/random.h"
#include "fsm/compiled_fsm.h"
#include "fuzz/fuzzer.h"
#include "fuzz/test_databases.h"
#include "fuzz/trace.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace {

void Usage() {
  std::printf(
      "lsglint — FSM state-graph verifier + SQL semantic linter\n\n"
      "modes:\n"
      "  --fsm D          analyze the FSM graph for a dataset\n"
      "                   (score|tpch|job|xuetang|all)\n"
      "  --lint FILE      lint SQL statements (one per line, # comments)\n"
      "  --trace FILE     lint the query from an lsgfuzz-trace artifact\n"
      "  --compile D      compile FSM mask/transition tables for a dataset\n"
      "                   (score|tpch|job|xuetang|all), print table stats,\n"
      "                   and differentially spot-check each table\n"
      "  --check-all      CI gate: every dataset x every profile\n"
      "  --inject-bug K   agg-type|join-edge: seed a masking gap; the run\n"
      "                   succeeds iff BOTH analyzer and linter detect it\n"
      "options:\n"
      "  --profile NAME   restrict --fsm to one fuzz profile (default all)\n"
      "  --dataset D      dataset for --lint/--inject-bug (default tpch)\n"
      "  --json PATH      write JSON report array to PATH\n"
      "  --values K       sampled values per column (default 6)\n"
      "  --scale F        synthetic dataset scale factor (default 0.05)\n"
      "  --max-states N   abstract-state budget (default 400000)\n"
      "  --max-millis N   compile time budget for --compile (default 10000)\n"
      "  --save DIR       cache --compile artifacts under DIR (build-or-load)\n"
      "  --verbose        print full per-profile summaries\n");
}

int FailUsage(const char* what) {
  std::fprintf(stderr, "%s (try --help)\n", what);
  return 2;
}

// Serializes every mask-relevant profile field. Two runs with equal
// fingerprints explore byte-identical state graphs (e.g. "wide" clamps to
// the same bounds as "default"), so the second is skipped.
std::string ProfileFingerprint(const lsg::QueryProfile& p, int budget) {
  char buf[96];
  std::snprintf(
      buf, sizeof(buf), "%d%d%d%d%d%d%d%d%d%d%d%d%d|%d,%d,%d,%d,%d|b%d",
      p.allow_select, p.allow_insert, p.allow_update, p.allow_delete,
      p.allow_join, p.allow_aggregate, p.allow_group_by, p.allow_nested,
      p.allow_exists, p.allow_insert_select, p.allow_like, p.allow_order_by,
      p.require_nested, p.max_joins, p.max_predicates, p.max_select_items,
      p.max_nesting_depth, p.max_tokens, budget);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string fsm_dataset, lint_path, trace_path, profile_name, json_path;
  std::string dataset = "tpch", inject, compile_dataset, save_dir;
  bool check_all = false, verbose = false;
  int values = 6, max_states = 400000, max_millis = 10000;
  double scale = 0.05;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--fsm") {
      fsm_dataset = need_value(i++);
    } else if (a == "--lint") {
      lint_path = need_value(i++);
    } else if (a == "--trace") {
      trace_path = need_value(i++);
    } else if (a == "--check-all") {
      check_all = true;
    } else if (a == "--inject-bug") {
      inject = need_value(i++);
    } else if (a == "--profile") {
      profile_name = need_value(i++);
    } else if (a == "--dataset") {
      dataset = need_value(i++);
    } else if (a == "--json") {
      json_path = need_value(i++);
    } else if (a == "--values") {
      values = std::atoi(need_value(i++));
    } else if (a == "--scale") {
      scale = std::atof(need_value(i++));
    } else if (a == "--max-states") {
      max_states = std::atoi(need_value(i++));
    } else if (a == "--max-millis") {
      max_millis = std::atoi(need_value(i++));
    } else if (a == "--compile") {
      compile_dataset = need_value(i++);
    } else if (a == "--save") {
      save_dir = need_value(i++);
    } else if (a == "--verbose" || a == "-v") {
      verbose = true;
    } else {
      return FailUsage(("unknown argument: " + a).c_str());
    }
  }

  auto build_db = [&](const std::string& name) {
    return BuildNamedDatabase(name, scale);
  };
  auto build_vocab = [&](const Database& db) {
    VocabularyOptions vo;
    vo.values_per_column = values;
    return Vocabulary::Build(db, vo);
  };

  // Runs the analyzer for one (db, profile); returns the report.
  auto analyze = [&](const Database& db, const Vocabulary& vocab,
                     const FuzzProfile& fp,
                     int budget = 0) -> StatusOr<FsmAnalysisReport> {
    AnalyzerOptions opts;
    opts.profile = fp.profile;
    opts.max_states = max_states;
    opts.budget_tokens = budget;
    FsmAnalyzer analyzer(&db, &vocab, opts);
    auto report = analyzer.Analyze();
    if (report.ok()) report.value().profile_name = fp.name;
    return report;
  };

  // --- mutation test: a seeded masking gap must be caught twice ---------
  if (!inject.empty()) {
    if (inject != "agg-type" && inject != "join-edge") {
      return FailUsage("unknown --inject-bug kind");
    }
    auto db_or = build_db(dataset);
    if (!db_or.ok()) return FailUsage(db_or.status().ToString().c_str());
    const Database db = std::move(db_or).value();
    auto vocab_or = build_vocab(db);
    if (!vocab_or.ok()) return FailUsage(vocab_or.status().ToString().c_str());
    const Vocabulary vocab = std::move(vocab_or).value();

    FuzzProfile fp = FuzzProfiles()[0];
    fp.name += "+" + inject;
    if (inject == "agg-type") {
      fp.profile.inject_agg_type_gap = true;
    } else {
      fp.profile.inject_join_edge_gap = true;
    }

    auto report_or = analyze(db, vocab, fp);
    if (!report_or.ok()) {
      std::fprintf(stderr, "analysis failed: %s\n",
                   report_or.status().ToString().c_str());
      return 2;
    }
    const FsmAnalysisReport& report = report_or.value();
    const bool analyzer_hit = report.num_violations > 0;

    // Independent detection path: random FSM walks under the gapped
    // profile, each finished AST linted directly.
    SqlLinter linter(&db.catalog());
    int lint_hits = 0, walks = 0;
    Rng rng(20260806);
    for (int ep = 0; ep < 300; ++ep) {
      GenerationFsm fsm(&db, &vocab, fp.profile);
      std::vector<int> actions;
      auto ast = RecordedRandomWalk(&fsm, &rng, &actions);
      if (!ast.ok()) continue;
      ++walks;
      if (!linter.Lint(ast.value()).empty()) ++lint_hits;
    }
    std::printf(
        "inject-bug %s on %s: analyzer violations=%d, linter hits=%d/%d "
        "walks\n",
        inject.c_str(), dataset.c_str(), report.num_violations, lint_hits,
        walks);
    if (verbose) std::fputs(report.Summary(&vocab).c_str(), stdout);
    if (analyzer_hit && lint_hits > 0) {
      std::printf("seeded gap detected by both FsmAnalyzer and SqlLinter\n");
      return 0;
    }
    std::fprintf(stderr, "MUTATION TEST FAILED: seeded %s gap missed (%s)\n",
                 inject.c_str(),
                 analyzer_hit ? "linter blind" : "analyzer blind");
    return 1;
  }

  // --- compile FSM mask/transition tables -------------------------------
  if (!compile_dataset.empty()) {
    std::vector<std::string> ds;
    if (compile_dataset == "all") {
      ds = FuzzDatasetNames();
    } else {
      ds.push_back(compile_dataset);
    }
    int compiled = 0, cap_skips = 0, mismatches = 0;
    for (const std::string& name : ds) {
      auto db_or = build_db(name);
      if (!db_or.ok()) return FailUsage(db_or.status().ToString().c_str());
      Database db = std::move(db_or).value();
      auto vocab_or = build_vocab(db);
      if (!vocab_or.ok()) {
        return FailUsage(vocab_or.status().ToString().c_str());
      }
      const Vocabulary vocab = std::move(vocab_or).value();
      for (const FuzzProfile& fp : FuzzProfiles()) {
        if (!profile_name.empty() && fp.name != profile_name) continue;
        CompileFsmOptions co;
        co.max_states = max_states;
        co.max_millis = max_millis;
        auto table_or =
            save_dir.empty()
                ? CompileFsm(db, vocab, fp.profile, co)
                : BuildOrLoadCompiledFsm(db, vocab, fp.profile, co, save_dir);
        if (!table_or.ok()) {
          // Big datasets under permissive profiles can legitimately exceed
          // the caps; report and move on (the runtime falls back to the
          // interpreted FSM for exactly these configurations).
          ++cap_skips;
          std::printf("%s/%s: not compiled: %s\n", name.c_str(),
                      fp.name.c_str(),
                      table_or.status().ToString().c_str());
          continue;
        }
        const CompiledFsmTable table = std::move(table_or).value();
        ++compiled;
        std::printf("%s/%s: %s\n", name.c_str(), fp.name.c_str(),
                    table.stats().ToString().c_str());

        // Differential spot check: a handful of random episodes through
        // the full compiled-vs-interpreted lockstep oracle.
        DifferentialOracle oracle(&db);
        Rng rng(20260808);
        int clean = 0;
        bool bad = false;
        for (int ep = 0; ep < 25 && !bad; ++ep) {
          GenerationFsm fsm(&db, &vocab, fp.profile);
          std::vector<int> actions;
          auto ast = RecordedRandomWalk(&fsm, &rng, &actions);
          if (!ast.ok()) continue;
          auto v = oracle.CheckCompiledFsm(&vocab, fp.profile, &table,
                                           actions);
          if (v.has_value()) {
            ++mismatches;
            bad = true;
            std::printf("  DIFFERENTIAL MISMATCH [%s] %s\n",
                        v->oracle.c_str(), v->detail.c_str());
            break;
          }
          ++clean;
        }
        if (!bad) {
          std::printf("  differential spot-check: %d episode(s) clean\n",
                      clean);
        }
      }
    }
    std::printf("compiled %d table(s), %d over caps, %d mismatch(es)\n",
                compiled, cap_skips, mismatches);
    if (mismatches > 0 || compiled == 0) return 1;
    return 0;
  }

  // --- lint a SQL file ---------------------------------------------------
  if (!lint_path.empty()) {
    auto db_or = build_db(dataset);
    if (!db_or.ok()) return FailUsage(db_or.status().ToString().c_str());
    const Database db = std::move(db_or).value();
    SqlLinter linter(&db.catalog());

    std::ifstream in(lint_path);
    if (!in) return FailUsage(("cannot open " + lint_path).c_str());
    std::string line;
    int lineno = 0, findings = 0, checked = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      ++checked;
      auto ast = ParseSql(line, db.catalog());
      if (!ast.ok()) {
        ++findings;
        std::printf("%s:%d: parse-error: %s\n", lint_path.c_str(), lineno,
                    ast.status().ToString().c_str());
        continue;
      }
      for (const LintIssue& issue : linter.Lint(ast.value())) {
        ++findings;
        std::printf("%s:%d: %s: %s\n", lint_path.c_str(), lineno,
                    LintRuleName(issue.rule), issue.message.c_str());
      }
    }
    std::printf("%d statement(s) checked, %d finding(s)\n", checked,
                findings);
    return findings == 0 ? 0 : 1;
  }

  // --- lint the query rebuilt from a corpus trace -----------------------
  if (!trace_path.empty()) {
    auto trace_or = LoadTrace(trace_path);
    if (!trace_or.ok()) return FailUsage(trace_or.status().ToString().c_str());
    const EpisodeTrace trace = std::move(trace_or).value();
    auto db_or = BuildNamedDatabase(trace.dataset, trace.scale);
    if (!db_or.ok()) return FailUsage(db_or.status().ToString().c_str());
    const Database db = std::move(db_or).value();
    VocabularyOptions vo;
    vo.values_per_column = trace.values_per_column;
    auto vocab_or = Vocabulary::Build(db, vo);
    if (!vocab_or.ok()) return FailUsage(vocab_or.status().ToString().c_str());
    const Vocabulary vocab = std::move(vocab_or).value();
    if (trace.profile < 0 ||
        trace.profile >= static_cast<int>(FuzzProfiles().size())) {
      return FailUsage("trace references an unknown profile index");
    }
    GenerationFsm fsm(&db, &vocab, FuzzProfiles()[trace.profile].profile);
    bool exact = false;
    auto ast = ReplayActions(&fsm, trace.actions, &exact);
    if (!ast.ok()) return FailUsage(ast.status().ToString().c_str());
    SqlLinter linter(&db.catalog());
    std::vector<LintIssue> issues = linter.Lint(ast.value());
    std::printf("%s: replay %s, sql=%s\n", trace_path.c_str(),
                exact ? "exact" : "repaired",
                RenderSql(ast.value(), db.catalog()).c_str());
    for (const LintIssue& issue : issues) {
      std::printf("  %s: %s\n", LintRuleName(issue.rule),
                  issue.message.c_str());
    }
    std::printf("%zu finding(s)\n", issues.size());
    return issues.empty() ? 0 : 1;
  }

  // --- FSM graph analysis ------------------------------------------------
  if (fsm_dataset.empty() && !check_all) return FailUsage("no mode given");

  std::vector<std::string> datasets;
  if (check_all || fsm_dataset == "all") {
    datasets = FuzzDatasetNames();
  } else {
    datasets.push_back(fsm_dataset);
  }

  std::string json = "[";
  bool first_json = true;
  int defects = 0;
  for (const std::string& name : datasets) {
    auto db_or = build_db(name);
    if (!db_or.ok()) return FailUsage(db_or.status().ToString().c_str());
    const Database db = std::move(db_or).value();
    auto vocab_or = build_vocab(db);
    if (!vocab_or.ok()) return FailUsage(vocab_or.status().ToString().c_str());
    const Vocabulary vocab = std::move(vocab_or).value();

    // The run matrix: the fuzz-profile rotation under the structural
    // (unbounded-budget) regime, plus one tight-budget run so the
    // pruning boundary itself gets explored (see AnalyzerOptions).
    struct Run {
      FuzzProfile fp;
      int budget;
    };
    std::vector<Run> runs;
    for (const FuzzProfile& fp : FuzzProfiles()) runs.push_back({fp, 0});
    for (const FuzzProfile& fp : FuzzProfiles()) {
      if (fp.name == "full") {
        Run tight{fp, 16};
        tight.fp.name += "+tight16";
        runs.push_back(tight);
      }
    }

    // Token coverage is judged across the whole profile rotation: a token
    // unused by one profile (e.g. DML keywords in "default") must still be
    // offered somewhere.
    std::vector<uint8_t> coverage(vocab.size(), 0);
    bool ran_all_profiles = true;
    std::set<std::string> seen_profiles;
    for (const Run& run : runs) {
      const FuzzProfile& fp = run.fp;
      if (!profile_name.empty() && fp.name != profile_name) {
        if (run.budget == 0) ran_all_profiles = false;
        continue;
      }
      {
        AnalyzerOptions probe;
        probe.profile = fp.profile;
        FsmAnalyzer clamped(&db, &vocab, probe);
        const std::string fpx =
            ProfileFingerprint(clamped.effective_profile(), run.budget);
        if (!seen_profiles.insert(fpx).second) {
          std::printf("%s/%s: clamps to an already-analyzed profile, "
                      "skipped\n",
                      name.c_str(), fp.name.c_str());
          continue;
        }
      }
      auto report_or = analyze(db, vocab, fp, run.budget);
      if (!report_or.ok()) {
        std::fprintf(stderr, "%s/%s: analysis failed: %s\n", name.c_str(),
                     fp.name.c_str(),
                     report_or.status().ToString().c_str());
        return 2;
      }
      FsmAnalysisReport& report = report_or.value();
      report.profile_name = name + "/" + fp.name;
      for (int id = 0; id < static_cast<int>(coverage.size()); ++id) {
        if (report.offered[id] != 0) coverage[id] = 1;
      }
      if (!report.Clean()) ++defects;
      if (verbose || !report.Clean()) {
        std::fputs(report.Summary(&vocab).c_str(), stdout);
      } else {
        std::printf(
            "%s: states=%d edges=%d accepting=%d dead=%d stuck=%d "
            "violations=%d\n",
            report.profile_name.c_str(), report.num_states,
            report.num_edges, report.num_accepting_edges, report.num_dead,
            report.num_stuck, report.num_violations);
      }
      if (!json_path.empty()) {
        if (!first_json) json += ",";
        json += report.ToJson();
        first_json = false;
      }
    }

    if (ran_all_profiles) {
      int never = 0;
      for (int id = 0; id < static_cast<int>(coverage.size()); ++id) {
        if (coverage[id] == 0) {
          if (never < 8) {
            std::printf("%s: token never offered in any profile: id=%d %s\n",
                        name.c_str(), id, vocab.token(id).text.c_str());
          }
          ++never;
        }
      }
      if (never > 0) {
        std::printf("%s: %d token(s) never offered across the rotation\n",
                    name.c_str(), never);
        ++defects;
      }
    }
  }
  json += "]";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return FailUsage(("cannot write " + json_path).c_str());
    out << json << "\n";
  }
  if (defects == 0) {
    std::printf("OK: zero dead states, zero reachable violations\n");
    return 0;
  }
  std::printf("%d profile run(s) with defects\n", defects);
  return 1;
}
