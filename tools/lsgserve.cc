// lsgserve — batch serving front end for the LearnedSQLGen generation
// service: a worker pool drains a file (or stdin) of constraint requests
// through a shared constraint-keyed model cache.
//
// Request format, one request per line ('#' starts a comment):
//   <metric> point <value> [n]
//   <metric> range <lo> <hi> [n]
// e.g.
//   card point 500 10
//   cost range 100 900 5
//
// Examples:
//   lsgserve --dataset tpch --workers 4 --requests batch.txt
//   echo "card range 50 100 5" | lsgserve --dataset job --epochs 120
//   lsgserve --dataset tpch --requests batch.txt --model-dir /tmp/lsg-models
//
// Per request one tab-separated line is printed to stdout (id, constraint,
// status, satisfied/attempts, hit/train, seconds), followed by the
// aggregate service metrics as one JSON object.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "datasets/job_like.h"
#include "datasets/tpch_like.h"
#include "datasets/xuetang_like.h"
#include "service/generation_service.h"

namespace {

// SIGINT/SIGTERM request a graceful drain: stop submitting new requests,
// finish (and report) everything already accepted. A second signal falls
// back to the default disposition, i.e. kills the process.
std::atomic<bool> g_drain{false};

void DrainSignalHandler(int signo) {
  // relaxed: level-semantic drain flag set from a signal handler; the
  // polling loop re-reads it and no payload rides on the store.
  g_drain.store(true, std::memory_order_relaxed);
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigaction(signo, &dfl, nullptr);
  // write(2) is async-signal-safe; fprintf is not.
  const char msg[] =
      "\nlsgserve: draining in-flight requests (signal again to kill)\n";
  ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)ignored;
}

void InstallDrainHandlers() {
  struct sigaction sa {};
  sa.sa_handler = DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void Usage() {
  std::printf(
      "lsgserve — concurrent constraint-aware SQL generation service\n\n"
      "required:\n"
      "  --dataset tpch|job|xuetang   benchmark database to serve over\n"
      "options:\n"
      "  --requests PATH  request file (default: read stdin)\n"
      "  --workers W      worker threads (default 4)\n"
      "  --max-batch B    in-flight requests a worker may decode together\n"
      "                   (default 8; 1 disables cross-request batching)\n"
      "  --queue Q        request queue capacity (default 64)\n"
      "  --cache C        resident model cap before LRU spill (default 8)\n"
      "  --model-dir DIR  spill/warm-start directory (default: no spill)\n"
      "  --n N            default satisfying queries per request (default 5)\n"
      "  --epochs E       training epochs per new model (default 150)\n"
      "  --scale F        dataset scale factor (default 1.0)\n"
      "  --seed S         base RNG seed (default 2024)\n"
      "  --fail-fast      reject instead of blocking when the queue is full\n"
      "\nrequest lines: \"card|cost point V [n]\" or "
      "\"card|cost range LO HI [n]\"\n");
}

struct ParsedRequest {
  lsg::GenerationRequest request;
  std::string text;  // original line, for the report
};

bool ParseRequestLine(const std::string& line, int default_n, uint64_t id,
                      ParsedRequest* out) {
  std::istringstream in(line);
  std::string metric_name, kind;
  if (!(in >> metric_name >> kind)) return false;
  lsg::ConstraintMetric metric;
  if (metric_name == "card") {
    metric = lsg::ConstraintMetric::kCardinality;
  } else if (metric_name == "cost") {
    metric = lsg::ConstraintMetric::kCost;
  } else {
    return false;
  }
  double a = 0, b = 0;
  int n = default_n;
  if (kind == "point") {
    if (!(in >> a)) return false;
    in >> n;
    out->request.constraint = lsg::Constraint::Point(metric, a);
  } else if (kind == "range") {
    if (!(in >> a >> b)) return false;
    in >> n;
    out->request.constraint = lsg::Constraint::Range(metric, a, b);
  } else {
    return false;
  }
  if (n <= 0) return false;
  out->request.n = n;
  out->request.id = id;
  out->text = line;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string dataset, requests_path, model_dir;
  int workers = 4, max_batch = 8, default_n = 5, epochs = 150;
  size_t queue_capacity = 64, cache_capacity = 8;
  double scale = 1.0;
  uint64_t seed = 2024;
  bool fail_fast = false;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--dataset") {
      dataset = need_value(i++);
    } else if (a == "--requests") {
      requests_path = need_value(i++);
    } else if (a == "--workers") {
      workers = std::atoi(need_value(i++));
    } else if (a == "--max-batch") {
      max_batch = std::atoi(need_value(i++));
    } else if (a == "--queue") {
      queue_capacity = static_cast<size_t>(std::atoi(need_value(i++)));
    } else if (a == "--cache") {
      cache_capacity = static_cast<size_t>(std::atoi(need_value(i++)));
    } else if (a == "--model-dir") {
      model_dir = need_value(i++);
    } else if (a == "--n") {
      default_n = std::atoi(need_value(i++));
    } else if (a == "--epochs") {
      epochs = std::atoi(need_value(i++));
    } else if (a == "--scale") {
      scale = std::atof(need_value(i++));
    } else if (a == "--seed") {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (a == "--fail-fast") {
      fail_fast = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (dataset.empty()) {
    Usage();
    return 2;
  }

  DatasetScale ds;
  ds.factor = scale;
  Database db;
  if (dataset == "tpch") {
    db = BuildTpchLike(ds);
  } else if (dataset == "job") {
    db = BuildJobLike(ds);
  } else if (dataset == "xuetang") {
    db = BuildXuetangLike(ds);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }

  // Read all request lines up front so submission order is deterministic.
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!requests_path.empty()) {
    file.open(requests_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", requests_path.c_str());
      return 2;
    }
    in = &file;
  }
  std::vector<ParsedRequest> batch;
  std::string line;
  while (std::getline(*in, line)) {
    std::string trimmed = line;
    size_t start = trimmed.find_first_not_of(" \t");
    if (start == std::string::npos || trimmed[start] == '#') continue;
    ParsedRequest parsed;
    if (!ParseRequestLine(trimmed, default_n, batch.size() + 1, &parsed)) {
      std::fprintf(stderr, "bad request line: %s\n", line.c_str());
      return 2;
    }
    batch.push_back(std::move(parsed));
  }
  if (batch.empty()) {
    std::fprintf(stderr, "no requests\n");
    return 2;
  }

  GenerationServiceOptions opts;
  opts.num_workers = workers;
  opts.max_batch = max_batch;
  opts.queue_capacity = queue_capacity;
  opts.registry.capacity = cache_capacity;
  opts.registry.spill_dir = model_dir;
  opts.gen.train_epochs = epochs;
  opts.gen.seed = seed;

  auto service = GenerationService::Create(&db, opts);
  if (!service.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving %s (%zu tables, %zu rows) with %d workers, "
               "max-batch %d, queue %zu, cache %zu, %zu requests\n",
               dataset.c_str(), db.num_tables(), db.TotalRows(), workers,
               max_batch, queue_capacity, cache_capacity, batch.size());

  InstallDrainHandlers();
  Stopwatch wall;
  std::vector<std::future<GenerationResponse>> futures;
  futures.reserve(batch.size());
  for (ParsedRequest& p : batch) {
    // relaxed: pairs with the level-semantic store in the signal handler.
    if (g_drain.load(std::memory_order_relaxed)) break;
    if (fail_fast) {
      auto f = (*service)->TrySubmit(p.request);
      if (!f.ok()) {
        futures.push_back(std::async(std::launch::deferred,
                                     [st = f.status(), id = p.request.id] {
                                       GenerationResponse r;
                                       r.id = id;
                                       r.status = st;
                                       return r;
                                     }));
        continue;
      }
      futures.push_back(std::move(*f));
    } else {
      futures.push_back((*service)->Submit(p.request));
    }
  }

  std::printf("id\tconstraint\tstatus\tsatisfied/attempts\tsource\tseconds\n");
  int failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    GenerationResponse r = futures[i].get();
    const char* source = r.cache_hit ? "cache-hit"
                         : r.warm_start ? "warm-start"
                                        : "trained";
    if (!r.status.ok()) {
      ++failures;
      std::printf("%llu\t%s\t%s\t-\t-\t-\n",
                  static_cast<unsigned long long>(r.id),
                  batch[i].request.constraint.ToString().c_str(),
                  r.status.ToString().c_str());
      continue;
    }
    std::printf("%llu\t%s\tOK\t%d/%d\t%s\t%.2f\n",
                static_cast<unsigned long long>(r.id),
                batch[i].request.constraint.ToString().c_str(),
                r.report.satisfied, r.report.attempts, source,
                r.queue_seconds + r.train_seconds + r.generate_seconds);
    for (const GeneratedQuery& q : r.report.queries) {
      std::printf("\t%.4g\t%s\n", q.metric, q.sql.c_str());
    }
  }
  // Requests never submitted because a drain signal arrived mid-batch.
  size_t skipped = batch.size() - futures.size();
  for (size_t i = futures.size(); i < batch.size(); ++i) {
    std::printf("%llu\t%s\tSKIPPED (drain)\t-\t-\t-\n",
                static_cast<unsigned long long>(batch[i].request.id),
                batch[i].request.constraint.ToString().c_str());
  }
  (*service)->Shutdown();
  double wall_seconds = wall.ElapsedSeconds();

  ServiceMetricsSnapshot m = (*service)->Metrics();
  std::printf("%s\n", m.ToJson().c_str());
  std::fprintf(stderr,
               "%zu/%zu requests in %.2fs wall (%.2f req/s), cache hit rate "
               "%.0f%%, %d failed, %zu skipped by drain\n",
               futures.size(), batch.size(), wall_seconds,
               static_cast<double>(futures.size()) / wall_seconds,
               100.0 * m.cache_hit_rate(), failures, skipped);
  return failures == 0 ? 0 : 1;
}
