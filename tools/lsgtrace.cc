// lsgtrace — observability front end: runs training or serving with the
// obs layer enabled and leaves behind a browsable artifact bundle:
//
//   <out>/trace.json      Chrome trace_event spans (chrome://tracing)
//   <out>/summary.json    flat metrics snapshot (counters/gauges/histograms)
//   <out>/episodes.jsonl  one row per generation episode (or .csv)
//
// plus a terminal summary (metric table + heaviest spans). After a --train
// run the tool re-reads episodes.jsonl and cross-checks the mean episode
// reward against the trainer's own per-epoch statistics; a mismatch is a
// telemetry bug and exits nonzero, which makes the ctest smoke
// self-checking.
//
// Examples:
//   lsgtrace --train tpch --episodes 200 --out /tmp/t
//   lsgtrace --train score --constraint "card range 5 50"
//   lsgtrace --serve tpch --episodes 100 --workers 4
//   lsgtrace --diff /tmp/a/summary.json /tmp/b/summary.json

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/test_databases.h"
#include "obs/episode_telemetry.h"
#include "optimizer/feedback_cache.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"
#include "service/generation_service.h"

namespace {

using namespace lsg;

void Usage() {
  std::printf(
      "lsgtrace — run training/serving under tracing, or diff snapshots\n\n"
      "modes (exactly one):\n"
      "  --train DATASET       train one model under tracing\n"
      "  --serve DATASET       run the generation service under tracing\n"
      "  --diff A.json B.json  align + compare two JSON metric files\n"
      "options:\n"
      "  --episodes N     total training episodes (default 200)\n"
      "  --constraint C   \"card|cost point V\" or \"card|cost range LO HI\"\n"
      "                   (default \"card range 5 50\")\n"
      "  --n N            queries to generate after training (default 10)\n"
      "  --workers W      service workers, --serve only (default 4)\n"
      "  --out DIR        artifact directory (default lsgtrace_out)\n"
      "  --csv            write episodes.csv instead of episodes.jsonl\n"
      "  --scale F        dataset scale factor (default 1.0)\n"
      "  --seed S         RNG seed (default 2024)\n"
      "datasets: score, tpch, job, xuetang\n");
}

bool ParseConstraint(const std::string& text, Constraint* out) {
  std::istringstream in(text);
  std::string metric_name, kind;
  if (!(in >> metric_name >> kind)) return false;
  ConstraintMetric metric;
  if (metric_name == "card") {
    metric = ConstraintMetric::kCardinality;
  } else if (metric_name == "cost") {
    metric = ConstraintMetric::kCost;
  } else {
    return false;
  }
  double a = 0, b = 0;
  if (kind == "point" && (in >> a)) {
    *out = Constraint::Point(metric, a);
    return true;
  }
  if (kind == "range" && (in >> a >> b)) {
    *out = Constraint::Range(metric, a, b);
    return true;
  }
  return false;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "lsgtrace: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// Mean of the "reward" column over rows whose tag matches; the read-back
// half of the telemetry self-check.
StatusOr<double> MeanRewardFromJsonl(const std::string& path,
                                     const std::string& tag, int* rows_out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  double sum = 0.0;
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto row = obs::JsonParse(line);
    if (!row.ok()) return row.status();
    if (row->StringOr("tag", "") != tag) continue;
    sum += row->NumberOr("reward", 0.0);
    ++rows;
  }
  *rows_out = rows;
  if (rows == 0) return Status::FailedPrecondition("no rows tagged " + tag);
  return sum / rows;
}

void PrintFeedbackCacheStats(const FeedbackCache& cache) {
  FeedbackCache::Stats s = cache.GetStats();
  const double total = static_cast<double>(s.hits + s.misses);
  std::printf(
      "feedback cache: %llu hits / %llu misses (%.1f%% hit rate), "
      "%llu evictions, %llu entries\n",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      total > 0 ? 100.0 * static_cast<double>(s.hits) / total : 0.0,
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.entries));
}

// Writes the shared artifact bundle and prints the terminal summary.
bool DumpArtifacts(const std::string& out_dir) {
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  bool ok = WriteFile(out_dir + "/trace.json",
                      obs::SpanTracer::Global().ChromeTraceJson());
  ok = WriteFile(out_dir + "/summary.json", snap.ToJson()) && ok;
  std::printf("\n-- metrics --\n%s", snap.ToTable().c_str());
  std::printf("\n-- spans --\n%s", obs::SpanTracer::Global().TextDump().c_str());
  return ok;
}

int RunTrain(const std::string& dataset, const Constraint& constraint,
             int episodes, int n, double scale, uint64_t seed,
             const std::string& out_dir, bool csv) {
  auto db = BuildNamedDatabase(dataset, scale);
  if (!db.ok()) {
    std::fprintf(stderr, "lsgtrace: %s\n", db.status().ToString().c_str());
    return 2;
  }

  LearnedSqlGenOptions opts;
  opts.seed = seed;
  const int batch = opts.trainer.batch_size;
  opts.train_epochs = std::max(1, episodes / batch);
  // Memoized estimator feedback shared across the whole run; its
  // opt.cache.* counters land in summary.json alongside env.feedback_ns.
  FeedbackCache feedback_cache;
  opts.feedback_cache = &feedback_cache;

  const std::string ep_path =
      out_dir + (csv ? "/episodes.csv" : "/episodes.jsonl");
  obs::EpisodeTelemetry sink(ep_path);
  sink.SetTag("train");
  obs::SetEpisodeSink(&sink);

  auto gen = LearnedSqlGen::Create(&*db, opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "lsgtrace: %s\n", gen.status().ToString().c_str());
    return 2;
  }
  std::printf("training on %s: %d epochs x %d episodes, constraint %s\n",
              dataset.c_str(), opts.train_epochs, batch,
              constraint.ToString().c_str());
  if (Status s = (*gen)->Train(constraint); !s.ok()) {
    std::fprintf(stderr, "lsgtrace: train failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  sink.SetTag("generate");
  auto report = (*gen)->GenerateSatisfied(n);
  if (!report.ok()) {
    std::fprintf(stderr, "lsgtrace: generate failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("generated %d/%d satisfying queries in %d attempts\n",
              report->satisfied, n, static_cast<int>(report->attempts));
  PrintFeedbackCacheStats(feedback_cache);

  obs::SetEpisodeSink(nullptr);
  sink.Flush();
  bool ok = DumpArtifacts(out_dir);
  std::printf("\nartifacts in %s (%llu episode rows)\n", out_dir.c_str(),
              static_cast<unsigned long long>(sink.rows_written()));

  // Self-check: the sink's view of training must agree with the trainer's.
  // Every epoch trains `batch` episodes, so the mean of the per-epoch
  // mean_total_reward equals the mean over all train-tagged episode rows.
  double trainer_mean = 0.0;
  int epochs_seen = 0;
  for (const EpochStats& e : (*gen)->trace()) {
    trainer_mean += e.mean_total_reward;
    ++epochs_seen;
  }
  trainer_mean /= std::max(1, epochs_seen);
  if (csv) {
    std::printf("self-check skipped (csv mode; rows not re-parsed)\n");
    return ok ? 0 : 2;
  }
  int rows = 0;
  auto sink_mean = MeanRewardFromJsonl(ep_path, "train", &rows);
  if (!sink_mean.ok()) {
    std::fprintf(stderr, "lsgtrace: self-check failed to read rows: %s\n",
                 sink_mean.status().ToString().c_str());
    return 3;
  }
  double tol = 1e-6 * std::max(1.0, std::fabs(trainer_mean));
  bool match = std::fabs(*sink_mean - trainer_mean) <= tol &&
               rows == epochs_seen * batch;
  std::printf(
      "self-check: trainer mean reward %.9g vs episodes.jsonl %.9g over %d "
      "rows -> %s\n",
      trainer_mean, *sink_mean, rows, match ? "PASS" : "FAIL");
  return match && ok ? 0 : 3;
}

int RunServe(const std::string& dataset, const Constraint& constraint,
             int episodes, int n, int workers, double scale, uint64_t seed,
             const std::string& out_dir, bool csv) {
  auto db = BuildNamedDatabase(dataset, scale);
  if (!db.ok()) {
    std::fprintf(stderr, "lsgtrace: %s\n", db.status().ToString().c_str());
    return 2;
  }

  const std::string ep_path =
      out_dir + (csv ? "/episodes.csv" : "/episodes.jsonl");
  obs::EpisodeTelemetry sink(ep_path);
  sink.SetTag("serve");
  obs::SetEpisodeSink(&sink);

  GenerationServiceOptions opts;
  opts.num_workers = workers;
  opts.gen.seed = seed;
  opts.gen.train_epochs = std::max(1, episodes / opts.gen.trainer.batch_size);
  // Publish the service counters into the same namespace as the training
  // instrumentation so one summary.json covers both.
  opts.metrics_registry = &obs::MetricsRegistry::Global();
  // One feedback cache across every worker: constraint buckets
  // re-estimating near-identical queries hit each other's entries.
  FeedbackCache feedback_cache;
  opts.feedback_cache = &feedback_cache;
  auto service = GenerationService::Create(&*db, opts);
  if (!service.ok()) {
    std::fprintf(stderr, "lsgtrace: %s\n",
                 service.status().ToString().c_str());
    return 2;
  }

  // A small mixed workload: the requested constraint plus siblings in
  // other buckets, repeated so cache hits happen.
  std::vector<Constraint> workload = {
      constraint,
      Constraint::Point(ConstraintMetric::kCardinality, 10),
      constraint,  // repeat: cache hit
  };
  std::vector<std::future<GenerationResponse>> futures;
  for (size_t i = 0; i < workload.size(); ++i) {
    GenerationRequest req;
    req.constraint = workload[i];
    req.n = n;
    req.batch = true;
    req.id = i + 1;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  int failed = 0;
  for (auto& f : futures) {
    GenerationResponse r = f.get();
    if (!r.status.ok()) ++failed;
  }
  (*service)->Shutdown();

  ServiceMetricsSnapshot m = (*service)->Metrics();
  obs::SetEpisodeSink(nullptr);
  sink.Flush();
  bool ok = DumpArtifacts(out_dir);
  ok = WriteFile(out_dir + "/service.json", m.ToJson() + "\n") && ok;
  std::printf("\n%zu requests (%d failed), model cache hit rate %.2f\n",
              workload.size(), failed, m.cache_hit_rate());
  PrintFeedbackCacheStats(feedback_cache);
  std::printf("artifacts in %s (%llu episode rows)\n", out_dir.c_str(),
              static_cast<unsigned long long>(sink.rows_written()));
  return ok && failed == 0 ? 0 : 3;
}

// Dotted-path recursive flatten of every numeric leaf (bools as 0/1).
void FlattenNumbers(const obs::JsonValue& v, const std::string& prefix,
                    std::map<std::string, double>* out) {
  using Kind = obs::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNumber:
      (*out)[prefix] = v.num;
      break;
    case Kind::kBool:
      (*out)[prefix] = v.b ? 1.0 : 0.0;
      break;
    case Kind::kObject:
      for (const auto& [key, child] : v.object) {
        FlattenNumbers(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case Kind::kArray:
      for (size_t i = 0; i < v.array.size(); ++i) {
        FlattenNumbers(v.array[i], prefix + "[" + std::to_string(i) + "]",
                       out);
      }
      break;
    default:
      break;
  }
}

int RunDiff(const std::string& path_a, const std::string& path_b) {
  auto read = [](const std::string& path) -> StatusOr<obs::JsonValue> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    return obs::JsonParse(buf.str());
  };
  auto a = read(path_a);
  auto b = read(path_b);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "lsgtrace: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 2;
  }
  std::map<std::string, double> fa, fb;
  FlattenNumbers(*a, "", &fa);
  FlattenNumbers(*b, "", &fb);

  std::printf("%-48s %14s %14s %9s\n", "key", "A", "B", "delta%");
  for (const auto& [key, va] : fa) {
    auto it = fb.find(key);
    if (it == fb.end()) {
      std::printf("%-48s %14.6g %14s %9s\n", key.c_str(), va, "-", "-");
      continue;
    }
    double vb = it->second;
    double denom = std::fabs(va) > 1e-12 ? std::fabs(va) : 1.0;
    std::printf("%-48s %14.6g %14.6g %8.2f%%\n", key.c_str(), va, vb,
                100.0 * (vb - va) / denom);
  }
  for (const auto& [key, vb] : fb) {
    if (fa.find(key) == fa.end()) {
      std::printf("%-48s %14s %14.6g %9s\n", key.c_str(), "-", vb, "-");
    }
  }

  // Derived cache-stats row: feedback-cache hit rate from the opt.cache.*
  // counters, when either snapshot carries them (suffix match keeps this
  // independent of where the snapshot nests its counters).
  auto find_suffix = [](const std::map<std::string, double>& f,
                        const std::string& suffix) -> const double* {
    for (const auto& [k, v] : f) {
      if (k.size() >= suffix.size() &&
          k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0) {
        return &v;
      }
    }
    return nullptr;
  };
  auto hit_rate = [&](const std::map<std::string, double>& f,
                      bool* present) -> double {
    const double* h = find_suffix(f, "opt.cache.hits");
    const double* m = find_suffix(f, "opt.cache.misses");
    *present = h != nullptr && m != nullptr;
    if (!*present || *h + *m <= 0.0) return 0.0;
    return 100.0 * *h / (*h + *m);
  };
  bool in_a = false, in_b = false;
  double ra = hit_rate(fa, &in_a);
  double rb = hit_rate(fb, &in_b);
  if (in_a || in_b) {
    std::printf("\n-- feedback cache --\n");
    if (in_a && in_b) {
      std::printf("%-48s %13.2f%% %13.2f%% %8.2f%%\n", "opt.cache.hit_rate",
                  ra, rb, rb - ra);
    } else {
      std::printf("%-48s %14s %14s %9s\n", "opt.cache.hit_rate",
                  in_a ? (std::to_string(ra) + "%").c_str() : "-",
                  in_b ? (std::to_string(rb) + "%").c_str() : "-", "-");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string train_dataset, serve_dataset, diff_a, diff_b;
  std::string out_dir = "lsgtrace_out";
  std::string constraint_text = "card range 5 50";
  int episodes = 200;
  int n = 10;
  int workers = 4;
  double scale = 1.0;
  uint64_t seed = 2024;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lsgtrace: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--train") {
      train_dataset = next("--train");
    } else if (arg == "--serve") {
      serve_dataset = next("--serve");
    } else if (arg == "--diff") {
      diff_a = next("--diff");
      diff_b = next("--diff");
    } else if (arg == "--episodes") {
      episodes = std::atoi(next("--episodes"));
    } else if (arg == "--constraint") {
      constraint_text = next("--constraint");
    } else if (arg == "--n") {
      n = std::atoi(next("--n"));
    } else if (arg == "--workers") {
      workers = std::atoi(next("--workers"));
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--scale") {
      scale = std::atof(next("--scale"));
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "lsgtrace: unknown flag %s\n\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  const int modes = (!train_dataset.empty() ? 1 : 0) +
                    (!serve_dataset.empty() ? 1 : 0) +
                    (!diff_a.empty() ? 1 : 0);
  if (modes != 1) {
    Usage();
    return 2;
  }
  if (!diff_a.empty()) return RunDiff(diff_a, diff_b);

  Constraint constraint = Constraint::Point(ConstraintMetric::kCardinality, 1);
  if (!ParseConstraint(constraint_text, &constraint)) {
    std::fprintf(stderr, "lsgtrace: bad --constraint \"%s\"\n",
                 constraint_text.c_str());
    return 2;
  }
  if (episodes <= 0 || n <= 0 || workers <= 0) {
    std::fprintf(stderr, "lsgtrace: --episodes/--n/--workers must be > 0\n");
    return 2;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "lsgtrace: cannot create %s (%s)\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }

  lsg::obs::SetEnabled(true);
  if (!train_dataset.empty()) {
    return RunTrain(train_dataset, constraint, episodes, n, scale, seed,
                    out_dir, csv);
  }
  return RunServe(serve_dataset, constraint, episodes, n, workers, scale,
                  seed, out_dir, csv);
}
