#!/usr/bin/env sh
# Umbrella static-analysis driver (the `check-static` CMake target).
#
#   usage: run_static_analysis.sh <repo_root> <lsgcheck_binary>
#
# Always runs (toolchain-independent):
#   1. lsgcheck --inject-bug        scanner-core canary
#   2. lsgcheck --selftest          fixture pair per rule
#   3. lsgcheck over src/tests/tools/bench — the real gate
#
# Runs when the toolchain provides it, is skipped with a notice otherwise
# (the baseline image is GCC-only; Clang developers get the full set):
#   4. a -Wthread-safety -Werror compile of the tree (clang++)
#   5. clang-tidy over the compilation database (checks from .clang-tidy)
#
# Exits nonzero on the first failing step.
set -eu

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <repo_root> <lsgcheck_binary>" >&2
  exit 2
fi
root=$1
lsgcheck=$2

echo "== lsgcheck --inject-bug"
"$lsgcheck" --inject-bug

echo "== lsgcheck --selftest"
"$lsgcheck" --selftest "$root/tests/lsgcheck_fixtures"

echo "== lsgcheck (full tree)"
"$lsgcheck" "$root/src" "$root/tests" "$root/tools" "$root/bench"

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang++ -Wthread-safety build"
  tsdir="$root/build-threadsafety"
  cmake -B "$tsdir" -S "$root" -DCMAKE_CXX_COMPILER=clang++ \
        -DLSG_THREAD_SAFETY=ON
  cmake --build "$tsdir" -j
else
  echo "== clang++ not found; skipping the -Wthread-safety build"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (checks from .clang-tidy)"
  db_dir=""
  for candidate in "$root/build" "$root/build-threadsafety"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      db_dir=$candidate
      break
    fi
  done
  if [ -z "$db_dir" ]; then
    echo "no compile_commands.json found; configure a build tree first" >&2
    exit 1
  fi
  find "$root/src" "$root/tools" -name '*.cc' -print |
    xargs clang-tidy -p "$db_dir" --quiet
else
  echo "== clang-tidy not found; skipping"
fi

echo "check-static: all available analyses passed"
