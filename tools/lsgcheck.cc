// lsgcheck: the repo's concurrency lint — a fast token-level scanner (no
// libclang) enforcing the synchronization conventions that the Clang
// thread-safety analysis cannot see or that must hold on every compiler:
//
//   raw-mutex          std::mutex / std::lock_guard / std::unique_lock /
//                      std::condition_variable & friends (and their
//                      includes) appear only in common/sync.h; everything
//                      else goes through lsg::Mutex / MutexLock / CondVar
//                      so the capability annotations are never bypassed.
//   atomic-justify     every explicit std::memory_order_* carries an
//                      adjacent justification comment ("relaxed: <why>",
//                      "acquire: <why>", ...) on the same line or within
//                      the four lines above it.
//   no-detach          no .detach() — every thread is joined; detached
//                      threads outlive shutdown and race teardown.
//   dtor-lock          acquiring a lock inside a destructor requires an
//                      adjacent "dtor-lock: <why>" comment (destructors
//                      run during teardown, where lock cycles hide).
//   guarded-by-member  every LSG_GUARDED_BY(x) / LSG_PT_GUARDED_BY(x)
//                      names a Mutex declared in the same file, so an
//                      annotation can't silently refer to nothing.
//
// String and character literals are stripped before matching (so this
// file's own rule patterns don't trip it) and comments are matched only
// by the justification rules. Per-line suppression:
//
//   some_code();  // lsgcheck: allow(raw-mutex)
//
// on the offending line or the line directly above disables that one rule
// there ("allow(all)" disables every rule). Exit codes follow the lsglint
// convention: 0 clean, 1 findings, 2 usage/internal error.
//
// Self-tests: --selftest <fixtures_dir> checks that each <rule>.bad.cc
// fixture yields at least one finding of exactly that rule and each
// <rule>.good.cc yields none; --inject-bug synthesizes one violation per
// rule in memory and verifies the scanner reports it.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// One source line split into scannable halves: `code` has string/char
// literal contents blanked out and comments removed; `comment` holds the
// text of any comment on the line (line comments and the in-line parts of
// block comments).
struct ScanLine {
  std::string code;
  std::string comment;
};

// Splits `text` into ScanLines, tracking block comments and (single-line)
// string/char literals. Raw strings are handled as ordinary strings —
// good enough for a token lint; their contents are blanked either way on
// quote parity.
std::vector<ScanLine> Preprocess(const std::string& text) {
  std::vector<ScanLine> out;
  ScanLine cur;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      in_string = in_char = false;  // unterminated literal: don't leak state
      out.push_back(cur);
      cur = ScanLine();
      continue;
    }
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      } else {
        cur.comment += c;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') {
      cur.comment.append(text, i + 2, text.find('\n', i) == std::string::npos
                                          ? std::string::npos
                                          : text.find('\n', i) - (i + 2));
      i = text.find('\n', i);
      if (i == std::string::npos) break;
      --i;  // let the newline branch run
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      cur.code += '"';
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000'000) are not char literals.
      const char prev = i > 0 ? text[i - 1] : '\0';
      if (std::isalnum(static_cast<unsigned char>(prev))) {
        continue;
      }
      in_char = true;
      cur.code += '\'';
      continue;
    }
    cur.code += c;
  }
  out.push_back(cur);
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Whole-token search: `needle` in `hay` with no identifier character on
// either side (a qualifying "lsg::" prefix still matches).
bool HasToken(const std::string& hay, const char* needle) {
  const size_t n = std::strlen(needle);
  size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    const char before = pos > 0 ? hay[pos - 1] : '\0';
    const char after = pos + n < hay.size() ? hay[pos + n] : '\0';
    if (!IsIdentChar(before) && !IsIdentChar(after)) return true;
    pos += n;
  }
  return false;
}

bool CommentContains(const std::string& comment, const std::string& needle) {
  return comment.find(needle) != std::string::npos;
}

// The justification window: the keyword may sit on the flagged line or on
// one of the kJustifyWindow lines above it (block comments included).
constexpr int kJustifyWindow = 4;

bool JustifiedNearby(const std::vector<ScanLine>& lines, size_t at,
                     const std::string& keyword) {
  const size_t lo = at >= kJustifyWindow ? at - kJustifyWindow : 0;
  for (size_t i = lo; i <= at; ++i) {
    if (CommentContains(lines[i].comment, keyword)) return true;
  }
  return false;
}

bool Suppressed(const std::vector<ScanLine>& lines, size_t at,
                const std::string& rule) {
  for (size_t i = at >= 1 ? at - 1 : 0; i <= at; ++i) {
    const std::string& c = lines[i].comment;
    const size_t pos = c.find("lsgcheck: allow(");
    if (pos == std::string::npos) continue;
    const size_t open = pos + std::strlen("lsgcheck: allow(");
    const size_t close = c.find(')', open);
    if (close == std::string::npos) continue;
    const std::string arg = c.substr(open, close - open);
    if (arg == rule || arg == "all") return true;
  }
  return false;
}

std::string ExtractIdent(const std::string& s, size_t from) {
  size_t end = from;
  while (end < s.size() && IsIdentChar(s[end])) ++end;
  return s.substr(from, end - from);
}

bool EndsWithPath(const std::string& path, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

const char* const kRawMutexTokens[] = {
    "std::mutex",          "std::recursive_mutex",
    "std::timed_mutex",    "std::recursive_timed_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::shared_lock",
    "std::condition_variable", "std::condition_variable_any",
};

const char* const kRawMutexIncludes[] = {
    "<mutex>", "<shared_mutex>", "<condition_variable>"};

const char* const kAllRules[] = {"raw-mutex", "atomic-justify", "no-detach",
                                 "dtor-lock", "guarded-by-member"};

void ScanBuffer(const std::string& path, const std::string& text,
                std::vector<Finding>* findings) {
  const bool is_sync_h = EndsWithPath(path, "common/sync.h");
  const std::vector<ScanLine> lines = Preprocess(text);

  // Pass 1: every Mutex declared in this file (members, globals, locals,
  // reference/pointer parameters) for the guarded-by-member rule.
  std::vector<std::string> mutex_names;
  for (const ScanLine& ln : lines) {
    size_t pos = 0;
    while ((pos = ln.code.find("Mutex", pos)) != std::string::npos) {
      const char before = pos > 0 ? ln.code[pos - 1] : '\0';
      size_t after = pos + std::strlen("Mutex");
      if (IsIdentChar(before)) {  // e.g. the middle of SomeMutexThing
        pos = after;
        continue;
      }
      // Skip declarator punctuation: "Mutex& mu", "Mutex* mu", "Mutex mu".
      while (after < ln.code.size() &&
             (ln.code[after] == ' ' || ln.code[after] == '&' ||
              ln.code[after] == '*')) {
        ++after;
      }
      if (after < ln.code.size() && IsIdentChar(ln.code[after]) &&
          after > pos + std::strlen("Mutex")) {
        const std::string name = ExtractIdent(ln.code, after);
        if (name != "Lock" && !name.empty()) mutex_names.push_back(name);
      }
      pos += std::strlen("Mutex");
    }
  }
  auto declared = [&mutex_names](const std::string& name) {
    for (const std::string& m : mutex_names) {
      if (m == name) return true;
    }
    return false;
  };

  // Pass 2: line rules, with a small amount of destructor-body tracking
  // for dtor-lock.
  int dtor_depth = -1;  // -1: not inside a destructor body
  bool dtor_pending_open = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const int lineno = static_cast<int>(i) + 1;
    auto report = [&](const char* rule, std::string message) {
      if (!Suppressed(lines, i, rule)) {
        findings->push_back({path, lineno, rule, std::move(message)});
      }
    };

    // --- destructor tracking -----------------------------------------
    if (dtor_depth < 0 && !dtor_pending_open) {
      // A destructor definition: "~Name(" with an empty parameter list
      // and no '=' or "return" on the line (filters ~x bit-not usage,
      // which virtually always has arguments or sits in an expression).
      size_t tpos = code.find('~');
      if (tpos != std::string::npos &&
          code.find('=') == std::string::npos && !HasToken(code, "return")) {
        const std::string name = ExtractIdent(code, tpos + 1);
        if (!name.empty()) {
          size_t paren = tpos + 1 + name.size();
          while (paren < code.size() && code[paren] == ' ') ++paren;
          if (paren < code.size() && code[paren] == '(') {
            size_t close = paren + 1;
            while (close < code.size() && code[close] == ' ') ++close;
            if (close < code.size() && code[close] == ')') {
              dtor_pending_open = true;  // body may open on a later line
            }
          }
        }
      }
    }
    bool line_in_dtor = dtor_depth >= 0;  // one-liners open AND close here
    if (dtor_pending_open || dtor_depth >= 0) {
      for (char c : code) {
        if (c == '{') {
          dtor_depth = dtor_depth < 0 ? 1 : dtor_depth + 1;
          dtor_pending_open = false;
          line_in_dtor = true;
        } else if (c == '}') {
          if (dtor_depth > 0 && --dtor_depth == 0) dtor_depth = -1;
        } else if (c == ';' && dtor_pending_open && dtor_depth < 0) {
          dtor_pending_open = false;  // declaration only, no body
        }
      }
    }

    // --- raw-mutex ----------------------------------------------------
    if (!is_sync_h) {
      for (const char* token : kRawMutexTokens) {
        if (HasToken(code, token)) {
          report("raw-mutex",
                 std::string(token) +
                     " outside common/sync.h; use lsg::Mutex / MutexLock / "
                     "CondVar");
        }
      }
      if (code.find("#include") != std::string::npos) {
        for (const char* inc : kRawMutexIncludes) {
          if (code.find(inc) != std::string::npos) {
            report("raw-mutex", std::string("#include ") + inc +
                                    " outside common/sync.h");
          }
        }
      }
    }

    // --- atomic-justify -----------------------------------------------
    size_t mo = 0;
    while ((mo = code.find("memory_order_", mo)) != std::string::npos) {
      const std::string order =
          ExtractIdent(code, mo + std::strlen("memory_order_"));
      mo += std::strlen("memory_order_");
      if (order.empty()) continue;
      if (!JustifiedNearby(lines, i, order + ":")) {
        report("atomic-justify",
               "memory_order_" + order + " without an adjacent \"" + order +
                   ": <why>\" comment");
      }
    }

    // --- no-detach ----------------------------------------------------
    if (code.find(".detach()") != std::string::npos ||
        code.find("->detach()") != std::string::npos) {
      report("no-detach", "detached thread; join it instead");
    }

    // --- dtor-lock ----------------------------------------------------
    bool acquires = code.find(".Lock()") != std::string::npos ||
                    code.find("->Lock()") != std::string::npos;
    {
      // A MutexLock *declaration*; "~MutexLock" (the wrapper's own
      // destructor) is not an acquisition.
      size_t mpos = 0;
      while (!acquires &&
             (mpos = code.find("MutexLock", mpos)) != std::string::npos) {
        const char before = mpos > 0 ? code[mpos - 1] : '\0';
        const size_t after = mpos + std::strlen("MutexLock");
        acquires = !IsIdentChar(before) && before != '~' &&
                   (after >= code.size() || !IsIdentChar(code[after]));
        mpos = after;
      }
    }
    if (line_in_dtor && acquires) {
      if (!JustifiedNearby(lines, i, "dtor-lock:")) {
        report("dtor-lock",
               "lock acquired in a destructor without an adjacent "
               "\"dtor-lock: <why>\" comment");
      }
    }

    // --- guarded-by-member --------------------------------------------
    // Preprocessor definitions (the macros themselves) are not uses.
    const size_t first_nonspace = code.find_first_not_of(" \t");
    if (first_nonspace != std::string::npos && code[first_nonspace] == '#') {
      continue;
    }
    for (const char* macro : {"LSG_GUARDED_BY", "LSG_PT_GUARDED_BY"}) {
      size_t gpos = 0;
      while ((gpos = code.find(macro, gpos)) != std::string::npos) {
        const char before = gpos > 0 ? code[gpos - 1] : '\0';
        size_t open = gpos + std::strlen(macro);
        gpos = open;
        if (IsIdentChar(before)) continue;  // LSG_PT_GUARDED_BY vs GUARDED_BY
        if (open >= code.size() || code[open] != '(') continue;
        const std::string arg = ExtractIdent(code, open + 1);
        const size_t close = open + 1 + arg.size();
        // Only plain identifiers are checked; expressions (this->mu,
        // other.mu) are beyond a token lint.
        if (arg.empty() || close >= code.size() || code[close] != ')') {
          continue;
        }
        if (!declared(arg)) {
          report("guarded-by-member",
                 std::string(macro) + "(" + arg +
                     ") names no Mutex declared in this file");
        }
      }
    }
  }
}

bool ScanFile(const std::string& path, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "lsgcheck: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ScanBuffer(path, buf.str(), findings);
  return true;
}

bool ScannableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

// Collects files under each root (a file argument is taken as-is). The
// lint fixtures are violations on purpose; directory walks skip them.
bool CollectFiles(const std::vector<std::string>& roots,
                  std::vector<std::string>* files) {
  namespace fs = std::filesystem;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files->push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "lsgcheck: no such file or directory: %s\n",
                   root.c_str());
      return false;
    }
    for (auto it = fs::recursive_directory_iterator(root, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string p = it->path().string();
      if (p.find("lsgcheck_fixtures") != std::string::npos) continue;
      if (ScannableExtension(it->path())) files->push_back(p);
    }
    if (ec) {
      std::fprintf(stderr, "lsgcheck: error walking %s: %s\n", root.c_str(),
                   ec.message().c_str());
      return false;
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void PrintFindings(const std::vector<Finding>& findings, bool json) {
  if (json) {
    std::printf("[");
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::printf("%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
                  "\"message\": \"%s\"}",
                  i == 0 ? "" : ",", JsonEscape(f.file).c_str(), f.line,
                  f.rule.c_str(), JsonEscape(f.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
    return;
  }
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
}

// --selftest: every fixture pair must behave as named.
int RunSelftest(const std::string& fixtures_dir) {
  int failures = 0;
  for (const char* rule : kAllRules) {
    const std::string bad = fixtures_dir + "/" + rule + ".bad.cc";
    const std::string good = fixtures_dir + "/" + rule + ".good.cc";

    std::vector<Finding> bad_findings;
    if (!ScanFile(bad, &bad_findings)) {
      std::printf("FAIL %s: fixture missing\n", bad.c_str());
      ++failures;
    } else {
      bool hit = false;
      for (const Finding& f : bad_findings) hit = hit || f.rule == rule;
      if (!hit) {
        std::printf("FAIL %s: expected a %s finding, got %zu other(s)\n",
                    bad.c_str(), rule, bad_findings.size());
        ++failures;
      } else {
        std::printf("PASS %s (%zu finding(s))\n", bad.c_str(),
                    bad_findings.size());
      }
    }

    std::vector<Finding> good_findings;
    if (!ScanFile(good, &good_findings)) {
      std::printf("FAIL %s: fixture missing\n", good.c_str());
      ++failures;
    } else if (!good_findings.empty()) {
      std::printf("FAIL %s: expected clean, got:\n", good.c_str());
      PrintFindings(good_findings, /*json=*/false);
      ++failures;
    } else {
      std::printf("PASS %s (clean)\n", good.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

// --inject-bug: prove each rule fires on a synthesized violation, with no
// fixture files involved — a canary for the scanner core itself.
int RunInjectBug() {
  struct Injection {
    const char* rule;
    const char* source;
  };
  const Injection injections[] = {
      {"raw-mutex", "void f() { std::mutex m; }\n"},
      {"atomic-justify",
       "void f() { x.store(1, std::memory_order_relaxed); }\n"},
      {"no-detach", "void f() { t.detach(); }\n"},
      {"dtor-lock", "Foo::~Foo() { MutexLock lock(&mu_); }\n"},
      {"guarded-by-member", "struct S { int x LSG_GUARDED_BY(mu_); };\n"},
  };
  int failures = 0;
  for (const Injection& inj : injections) {
    std::vector<Finding> findings;
    ScanBuffer("<injected>", inj.source, &findings);
    bool hit = false;
    for (const Finding& f : findings) hit = hit || f.rule == inj.rule;
    if (hit) {
      std::printf("PASS inject %s\n", inj.rule);
    } else {
      std::printf("FAIL inject %s: scanner missed the seeded violation\n",
                  inj.rule);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: lsgcheck [--json] <file-or-dir>...\n"
      "       lsgcheck --selftest <fixtures_dir>\n"
      "       lsgcheck --inject-bug\n"
      "       lsgcheck --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      if (i + 1 >= argc) return Usage();
      return RunSelftest(argv[i + 1]);
    } else if (arg == "--inject-bug") {
      return RunInjectBug();
    } else if (arg == "--list-rules") {
      for (const char* rule : kAllRules) std::printf("%s\n", rule);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return Usage();

  std::vector<std::string> files;
  if (!CollectFiles(roots, &files)) return 2;
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    if (!ScanFile(f, &findings)) return 2;
  }
  PrintFindings(findings, json);
  if (!json) {
    std::printf("lsgcheck: %zu file(s), %zu finding(s)\n", files.size(),
                findings.size());
  }
  return findings.empty() ? 0 : 1;
}
