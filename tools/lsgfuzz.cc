// lsgfuzz — deterministic fuzzing & differential-testing front end.
//
// Default mode drives randomized FSM episodes through the full oracle
// stack (FSM walk → Render → Parser re-parse → AST equivalence →
// optimized Executor vs. naive reference evaluator → estimator bounds →
// DML apply under snapshot/rollback) across the bundled datasets. Every
// failure is shrunk by delta-debugging and written to the corpus as a
// replayable trace file.
//
// Examples:
//   lsgfuzz --episodes 2000 --seed 7                 # all four datasets
//   lsgfuzz --dataset tpch --episodes 500 --corpus /tmp/lsg-corpus
//   lsgfuzz --replay /tmp/lsg-corpus/tpch-ep42-exec-vs-ref.trace
//   lsgfuzz --service --rounds 6                     # fuzz the service
//   lsgfuzz --episodes 50 --inject-bug card-off-by-one   # harness check
//
// Exit status: 0 clean, 1 violations found, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/service_fuzz.h"
#include "fuzz/test_databases.h"
#include "fuzz/trace.h"
#include "vexec/vectorized_engine.h"

namespace {

void Usage() {
  std::printf(
      "lsgfuzz — deterministic fuzzing & differential-oracle harness\n\n"
      "modes (default: fuzz):\n"
      "  --replay PATH    replay one corpus trace deterministically\n"
      "  --service        fuzz the concurrent generation service\n"
      "fuzz options:\n"
      "  --episodes N     episodes per dataset (default 1000)\n"
      "  --seed S         base RNG seed (default 7)\n"
      "  --dataset D      score|tpch|job|xuetang|all (default all)\n"
      "  --scale F        synthetic dataset scale factor (default 0.05)\n"
      "  --values K       sampled values per column (default 8)\n"
      "  --corpus DIR     write failure artifacts here\n"
      "  --no-shrink      keep failing traces unminimized\n"
      "  --max-failures N stop a dataset after N failures (default 16)\n"
      "  --verbose        log every failure as it is found\n"
      "  --oracle NAME    all|vexec|batch-decode (default all). vexec runs\n"
      "                   only the vectorized-vs-reference lockstep check;\n"
      "                   batch-decode only the batched-vs-scalar decode\n"
      "                   equivalence check\n"
      "  --inject-bug K   card-off-by-one|render-space|mask-bit|\n"
      "                   transition-swap|hash-collision|\n"
      "                   sel-vector-off-by-one (mutation-tests the\n"
      "                   harness: the run MUST report violations)\n"
      "service options:\n"
      "  --rounds N       service lifecycles (default 4)\n"
      "  --requests N     requests per round (default 16)\n");
}

int FailUsage(const char* what) {
  std::fprintf(stderr, "%s (try --help)\n", what);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string dataset = "all", corpus_dir, replay_path, inject;
  std::string oracle_mode = "all";
  int episodes = 1000, max_failures = 16, values = 8;
  int rounds = 4, requests = 16;
  uint64_t seed = 7;
  double scale = 0.05;
  bool shrink = true, verbose = false, service_mode = false;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--episodes") {
      episodes = std::atoi(need_value(i++));
    } else if (a == "--seed") {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (a == "--dataset") {
      dataset = need_value(i++);
    } else if (a == "--scale") {
      scale = std::atof(need_value(i++));
    } else if (a == "--values") {
      values = std::atoi(need_value(i++));
    } else if (a == "--corpus") {
      corpus_dir = need_value(i++);
    } else if (a == "--no-shrink") {
      shrink = false;
    } else if (a == "--max-failures") {
      max_failures = std::atoi(need_value(i++));
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a == "--inject-bug") {
      inject = need_value(i++);
    } else if (a == "--oracle") {
      oracle_mode = need_value(i++);
    } else if (a == "--replay") {
      replay_path = need_value(i++);
    } else if (a == "--service") {
      service_mode = true;
    } else if (a == "--rounds") {
      rounds = std::atoi(need_value(i++));
    } else if (a == "--requests") {
      requests = std::atoi(need_value(i++));
    } else {
      return FailUsage(("unknown flag " + a).c_str());
    }
  }

  OracleOptions oracle;
  if (oracle_mode == "vexec") {
    // Focused lockstep mode: only the vectorized-vs-reference check runs
    // (plus the executor acceptance gate it depends on).
    oracle.check_lint = false;
    oracle.check_reference = false;
    oracle.check_roundtrip = false;
    oracle.check_estimator = false;
    oracle.check_dml_apply = false;
    oracle.check_prefix_estimates = false;
    oracle.check_compiled_fsm = false;
    oracle.check_vexec = true;
    oracle.check_batch_decode = false;
  } else if (oracle_mode == "batch-decode") {
    // Focused serving-equivalence mode: only the batched-vs-scalar decode
    // check runs (sampled once per 8 episodes, like the full stack).
    oracle.check_lint = false;
    oracle.check_reference = false;
    oracle.check_roundtrip = false;
    oracle.check_estimator = false;
    oracle.check_dml_apply = false;
    oracle.check_prefix_estimates = false;
    oracle.check_compiled_fsm = false;
    oracle.check_vexec = false;
    oracle.check_batch_decode = true;
  } else if (oracle_mode != "all") {
    return FailUsage("unknown --oracle name");
  }
  std::string inject_fsm_bug;
  if (inject == "card-off-by-one") {
    oracle.inject_card_offset = 1;
  } else if (inject == "render-space") {
    oracle.inject_render_space = true;
  } else if (inject == "mask-bit" || inject == "transition-swap") {
    inject_fsm_bug = inject;  // corrupts the compiled FSM tables
  } else if (inject == "hash-collision" || inject == "sel-vector-off-by-one") {
    oracle.inject_vexec_bug = vexec::ParseInjectBug(inject);
  } else if (!inject.empty()) {
    return FailUsage("unknown --inject-bug kind");
  }

  // ------------------------------------------------------------ service
  if (service_mode) {
    ServiceFuzzOptions opts;
    opts.rounds = rounds;
    opts.requests_per_round = requests;
    opts.seed = seed;
    opts.scale = scale;
    opts.verbose = verbose;
    Status st = FuzzGenerationService(opts);
    if (!st.ok()) {
      std::fprintf(stderr, "service fuzz FAILED: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("service fuzz clean: %d rounds x %d requests\n", rounds,
                requests);
    return 0;
  }

  // ------------------------------------------------------------- replay
  if (!replay_path.empty()) {
    auto trace = LoadTrace(replay_path);
    if (!trace.ok()) {
      return FailUsage(trace.status().ToString().c_str());
    }
    auto rerun = ReplayTraceEpisode(*trace, oracle);
    if (!rerun.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   rerun.status().ToString().c_str());
      return 2;
    }
    std::printf("dataset=%s profile=%d actions=%zu\nsql=%s\n",
                rerun->dataset.c_str(), rerun->profile,
                rerun->actions.size(), rerun->sql.c_str());
    if (rerun->oracle.empty()) {
      std::printf("replay clean: no oracle violation\n");
      return trace->oracle.empty() ? 0 : 1;  // recorded failure vanished
    }
    std::printf("violation [%s] %s\n", rerun->oracle.c_str(),
                rerun->detail.c_str());
    if (!trace->oracle.empty() && trace->oracle != rerun->oracle) {
      std::printf("note: recorded oracle was [%s]\n", trace->oracle.c_str());
    }
    return 1;
  }

  // --------------------------------------------------------------- fuzz
  FuzzOptions opts;
  if (dataset != "all") opts.datasets = {dataset};
  opts.episodes = episodes;
  opts.seed = seed;
  opts.scale = scale;
  opts.values_per_column = values;
  opts.corpus_dir = corpus_dir;
  opts.shrink = shrink;
  opts.max_failures = max_failures;
  opts.verbose = verbose;
  opts.oracle = oracle;
  opts.inject_fsm_bug = inject_fsm_bug;

  auto stats = RunFuzz(opts);
  if (!stats.ok()) {
    std::fprintf(stderr, "fuzz run failed: %s\n",
                 stats.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", stats->ToString().c_str());
  for (const auto& f : stats->failures) {
    std::printf("violation [%s] %s ep=%llu actions=%zu\n  %s\n  sql=%s\n",
                f.oracle.c_str(), f.dataset.c_str(),
                static_cast<unsigned long long>(f.episode),
                f.actions.size(), f.detail.c_str(), f.sql.c_str());
  }
  if (!stats->failures.empty() && !corpus_dir.empty()) {
    std::printf("replay artifacts written under %s\n", corpus_dir.c_str());
  }
  return stats->failures.empty() ? 0 : 1;
}
