// lsgclient — command-line client for a running lsgserved: sends one
// generation request (or a ping), prints the JSON response, exits 0 iff
// the response carried "ok": true. Also fronts the loopback load driver
// and the protocol fuzzer so both can target a remote daemon.
//
// Examples:
//   lsgclient --port 7433 --ping
//   lsgclient --port 7433 --tenant alice --metric card --range 100 900 -n 5
//   lsgclient --port 7433 --load --connections 64 --requests 200 --ping-only
//   lsgclient --port 7433 --fuzz --rounds 32 --clients 4
//
// The raw protocol is one JSON object per LF-terminated line; --raw sends
// an arbitrary frame verbatim for scripting and debugging.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "net/net_client.h"

namespace {

void Usage() {
  std::printf(
      "lsgclient — client for the lsgserved line protocol\n\n"
      "connection:\n"
      "  --host H            server address (default 127.0.0.1)\n"
      "  --port P            server port (default 7433)\n"
      "  --timeout-ms T      read timeout (default 120000)\n"
      "request (default mode):\n"
      "  --tenant NAME       tenant for admission control (default cli)\n"
      "  --metric card|cost  constraint metric (default card)\n"
      "  --point V | --range LO HI   constraint (default range 1 1e6)\n"
      "  -n N                satisfying queries to request (default 5)\n"
      "  --batch             exactly N attempts instead of N satisfied\n"
      "  --ping              liveness probe instead of a generation\n"
      "  --raw FRAME         send FRAME verbatim, print one response line\n"
      "load driver (--load):\n"
      "  --connections N --requests N --pipeline N --tenants N --ping-only\n"
      "fuzzer (--fuzz):\n"
      "  --rounds N --clients N --seed S\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string host = "127.0.0.1", tenant = "cli", metric = "card", raw;
  int port = 7433, n = 5, timeout_ms = 120000;
  bool batch = false, ping = false, load = false, fuzz = false;
  bool have_point = false, have_range = false;
  double point = 0, lo = 1, hi = 1e6;
  int connections = 8, requests = 100, pipeline = 4, tenants = 1;
  bool ping_only = false;
  int rounds = 32, clients = 4;
  uint64_t seed = 7;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--host") {
      host = need_value(i++);
    } else if (a == "--port") {
      port = std::atoi(need_value(i++));
    } else if (a == "--timeout-ms") {
      timeout_ms = std::atoi(need_value(i++));
    } else if (a == "--tenant") {
      tenant = need_value(i++);
    } else if (a == "--metric") {
      metric = need_value(i++);
    } else if (a == "--point") {
      point = std::atof(need_value(i++));
      have_point = true;
    } else if (a == "--range") {
      lo = std::atof(need_value(i++));
      hi = std::atof(need_value(i++));
      have_range = true;
    } else if (a == "-n") {
      n = std::atoi(need_value(i++));
    } else if (a == "--batch") {
      batch = true;
    } else if (a == "--ping") {
      ping = true;
    } else if (a == "--raw") {
      raw = need_value(i++);
    } else if (a == "--load") {
      load = true;
    } else if (a == "--fuzz") {
      fuzz = true;
    } else if (a == "--connections") {
      connections = std::atoi(need_value(i++));
    } else if (a == "--requests") {
      requests = std::atoi(need_value(i++));
    } else if (a == "--pipeline") {
      pipeline = std::atoi(need_value(i++));
    } else if (a == "--tenants") {
      tenants = std::atoi(need_value(i++));
    } else if (a == "--ping-only") {
      ping_only = true;
    } else if (a == "--rounds") {
      rounds = std::atoi(need_value(i++));
    } else if (a == "--clients") {
      clients = std::atoi(need_value(i++));
    } else if (a == "--seed") {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (have_point && have_range) {
    std::fprintf(stderr, "--point and --range are mutually exclusive\n");
    return 2;
  }

  if (load) {
    net::LoadDriverOptions o;
    o.host = host;
    o.port = port;
    o.connections = connections;
    o.requests_per_connection = requests;
    o.pipeline_depth = pipeline;
    o.tenants = tenants;
    o.ping_only = ping_only;
    o.timeout_ms = timeout_ms;
    auto report = net::RunLoadDriver(o);
    if (!report.ok()) {
      std::fprintf(stderr, "load: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->ToString().c_str());
    return 0;
  }
  if (fuzz) {
    net::NetFuzzOptions o;
    o.host = host;
    o.port = port;
    o.rounds = rounds;
    o.clients = clients;
    o.seed = seed;
    auto report = net::FuzzNetProtocol(o);
    if (!report.ok()) {
      std::fprintf(stderr, "fuzz: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->ToString().c_str());
    return 0;
  }

  std::string line;
  if (!raw.empty()) {
    line = raw;
  } else if (ping) {
    line = "{\"op\": \"ping\", \"id\": 1}";
  } else {
    std::string constraint =
        have_point
            ? StrFormat("{\"metric\": \"%s\", \"kind\": \"point\", "
                        "\"value\": %s}",
                        metric.c_str(), FormatDouble(point).c_str())
            : StrFormat("{\"metric\": \"%s\", \"kind\": \"range\", "
                        "\"lo\": %s, \"hi\": %s}",
                        metric.c_str(), FormatDouble(lo).c_str(),
                        FormatDouble(hi).c_str());
    line = net::BuildRequestLine(tenant, 1, constraint, n, batch);
  }

  auto client = net::BlockingClient::Connect(host, port, timeout_ms);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  if (!client->SendLine(line).ok()) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }
  auto response = client->ReadLine();
  if (!response.ok()) {
    std::fprintf(stderr, "read: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->c_str());
  auto doc = obs::JsonParse(*response);
  return doc.ok() && doc->NumberOr("ok", 0) == 1.0 ? 0 : 1;
}
