// lsgserved — network serving daemon for the LearnedSQLGen generation
// service: a single-threaded epoll (poll fallback) event loop speaking a
// line-delimited JSON protocol, with per-tenant token-bucket admission
// control in front of the shared worker pool. See README "Network
// serving" for the protocol spec.
//
// Modes:
//   serve (default)  bind and serve until SIGINT/SIGTERM (graceful drain)
//   --bench          in-process self-check: start the server, run the
//                    loopback load driver against it, verify accounting
//   --fuzz           in-process protocol fuzzer (malformed frames,
//                    oversized lines, slow-loris, mid-request disconnects)
//
// Examples:
//   lsgserved --dataset score --port 7433 --epochs 40
//   lsgserved --dataset score --epochs 2 --bench --ping-only
//       --bench-connections 64 --bench-requests 200   (one line)
//   lsgserved --dataset score --epochs 2 --fuzz --fuzz-rounds 64
//
// Exit code 0 on success; --bench and --fuzz exit 1 when an invariant
// fails (unanswered frame, unparseable response, accounting mismatch).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include <unistd.h>

#include "fuzz/test_databases.h"
#include "net/net_client.h"
#include "net/server.h"
#include "service/generation_service.h"

namespace {

lsg::net::NetServer* g_server = nullptr;

void DrainSignalHandler(int) {
  // BeginDrain is async-signal-safe: one atomic store + one write(2).
  if (g_server != nullptr) g_server->BeginDrain();
}

void InstallDrainHandlers() {
  struct sigaction sa {};
  sa.sa_handler = DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void Usage() {
  std::printf(
      "lsgserved — network front end for constraint-aware SQL generation\n\n"
      "dataset / service:\n"
      "  --dataset NAME        score|tpch|job|xuetang (default score)\n"
      "  --scale F             dataset scale factor (default 1.0)\n"
      "  --workers W           service worker threads (default 4)\n"
      "  --queue Q             service queue capacity (default 64)\n"
      "  --cache C             resident model cap (default 8)\n"
      "  --epochs E            training epochs per new model (default 150)\n"
      "  --seed S              base RNG seed (default 2024)\n"
      "network:\n"
      "  --host H              bind address (default 127.0.0.1)\n"
      "  --port P              bind port (default 7433; 0 = ephemeral)\n"
      "  --max-conns N         accepted connection cap (default 256)\n"
      "  --idle-timeout-ms T   close idle connections (default 30000)\n"
      "  --request-timeout-ms T  per-request deadline (default 0 = none)\n"
      "  --drain-timeout-ms T  max graceful-drain wait (default 10000)\n"
      "  --no-sql              omit generated SQL from responses\n"
      "  --force-poll          use poll(2) even where epoll exists\n"
      "admission (per tenant unless noted):\n"
      "  --tenant-rate R       token-bucket refill/s (default 500; 0 = off)\n"
      "  --tenant-burst B      bucket capacity (default 1000)\n"
      "  --tenant-inflight N   inflight cap per tenant (default 64)\n"
      "  --max-inflight N      global inflight cap (default 256)\n"
      "bench / fuzz:\n"
      "  --bench               run the in-process loopback load driver\n"
      "  --bench-connections N --bench-requests N --bench-pipeline N\n"
      "  --ping-only           bench pure protocol overhead, skip service\n"
      "  --tenants N           spread bench load over N tenants\n"
      "  --fuzz                run the in-process protocol fuzzer\n"
      "  --fuzz-rounds N --fuzz-clients N\n");
}

// Sums the structured-error response counters; together with ok, pings and
// orphaned these partition every received frame (oversized lines are
// rejected before the frame exists, so req.oversized sits outside).
uint64_t ErrorResponses(const std::map<std::string, uint64_t>& c) {
  uint64_t sum = 0;
  for (const char* name :
       {"net.req.bad_frame", "net.req.bad_request", "net.req.over_quota",
        "net.req.over_inflight", "net.req.queue_full", "net.req.draining",
        "net.req.timeout", "net.req.internal"}) {
    auto it = c.find(name);
    if (it != c.end()) sum += it->second;
  }
  return sum;
}

uint64_t CounterOr0(const std::map<std::string, uint64_t>& c,
                    const char* name) {
  auto it = c.find(name);
  return it == c.end() ? 0 : it->second;
}

// The exact-accounting acceptance check: every frame the server counted as
// received was answered (ok, pong, structured error) or explicitly
// orphaned by a forced drain. Run after Join(), when counters are quiet.
bool CheckConservation(const lsg::obs::MetricsSnapshot& snap) {
  const auto& c = snap.counters;
  uint64_t received = CounterOr0(c, "net.req.received");
  uint64_t answered = CounterOr0(c, "net.req.ok") +
                      CounterOr0(c, "net.req.pings") + ErrorResponses(c) +
                      CounterOr0(c, "net.req.orphaned");
  if (received == answered) return true;
  std::fprintf(stderr,
               "ACCOUNTING MISMATCH: net.req.received=%llu but "
               "ok+pings+errors+orphaned=%llu\n",
               static_cast<unsigned long long>(received),
               static_cast<unsigned long long>(answered));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsg;

  std::string dataset = "score", host = "127.0.0.1";
  double scale = 1.0;
  int workers = 4, epochs = 150, port = 7433;
  size_t queue_capacity = 64, cache_capacity = 8;
  uint64_t seed = 2024;
  net::NetServerOptions net_opts;
  bool bench = false, fuzz = false, ping_only = false;
  int bench_connections = 8, bench_requests = 100, bench_pipeline = 4;
  int tenants = 1, fuzz_rounds = 64, fuzz_clients = 4;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (a == "--dataset") {
      dataset = need_value(i++);
    } else if (a == "--scale") {
      scale = std::atof(need_value(i++));
    } else if (a == "--workers") {
      workers = std::atoi(need_value(i++));
    } else if (a == "--queue") {
      queue_capacity = static_cast<size_t>(std::atoi(need_value(i++)));
    } else if (a == "--cache") {
      cache_capacity = static_cast<size_t>(std::atoi(need_value(i++)));
    } else if (a == "--epochs") {
      epochs = std::atoi(need_value(i++));
    } else if (a == "--seed") {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (a == "--host") {
      host = need_value(i++);
    } else if (a == "--port") {
      port = std::atoi(need_value(i++));
    } else if (a == "--max-conns") {
      net_opts.max_connections = std::atoi(need_value(i++));
    } else if (a == "--idle-timeout-ms") {
      net_opts.idle_timeout_ms = std::atoi(need_value(i++));
    } else if (a == "--request-timeout-ms") {
      net_opts.request_timeout_ms = std::atoi(need_value(i++));
    } else if (a == "--drain-timeout-ms") {
      net_opts.drain_timeout_ms = std::atoi(need_value(i++));
    } else if (a == "--no-sql") {
      net_opts.include_sql = false;
    } else if (a == "--force-poll") {
      net_opts.force_poll = true;
    } else if (a == "--tenant-rate") {
      net_opts.admission.tenant_rate = std::atof(need_value(i++));
    } else if (a == "--tenant-burst") {
      net_opts.admission.tenant_burst = std::atof(need_value(i++));
    } else if (a == "--tenant-inflight") {
      net_opts.admission.tenant_max_inflight = std::atoi(need_value(i++));
    } else if (a == "--max-inflight") {
      net_opts.admission.max_inflight = std::atoi(need_value(i++));
    } else if (a == "--bench") {
      bench = true;
    } else if (a == "--bench-connections") {
      bench_connections = std::atoi(need_value(i++));
    } else if (a == "--bench-requests") {
      bench_requests = std::atoi(need_value(i++));
    } else if (a == "--bench-pipeline") {
      bench_pipeline = std::atoi(need_value(i++));
    } else if (a == "--ping-only") {
      ping_only = true;
    } else if (a == "--tenants") {
      tenants = std::atoi(need_value(i++));
    } else if (a == "--fuzz") {
      fuzz = true;
    } else if (a == "--fuzz-rounds") {
      fuzz_rounds = std::atoi(need_value(i++));
    } else if (a == "--fuzz-clients") {
      fuzz_clients = std::atoi(need_value(i++));
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    }
  }

  auto db = BuildNamedDatabase(dataset, scale);
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 2;
  }

  // One registry for both layers, so the final snapshot shows net.* and
  // service.* side by side.
  obs::MetricsRegistry registry;
  GenerationServiceOptions svc_opts;
  svc_opts.num_workers = workers;
  svc_opts.queue_capacity = queue_capacity;
  svc_opts.registry.capacity = cache_capacity;
  svc_opts.gen.train_epochs = epochs;
  svc_opts.gen.seed = seed;
  svc_opts.metrics_registry = &registry;
  auto service = GenerationService::Create(&*db, svc_opts);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  net_opts.host = host;
  net_opts.port = (bench || fuzz) ? 0 : port;  // self-tests use ephemeral
  net_opts.metrics_registry = &registry;
  net::ServiceDispatcher dispatcher(service->get());
  auto server = net::NetServer::Create(&dispatcher, net_opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();
  InstallDrainHandlers();

  int rc = 0;
  if (bench || fuzz) {
    Status started = (*server)->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
      return 1;
    }
    if (bench) {
      net::LoadDriverOptions lo;
      lo.host = host;
      lo.port = (*server)->port();
      lo.connections = bench_connections;
      lo.requests_per_connection = bench_requests;
      lo.pipeline_depth = bench_pipeline;
      lo.ping_only = ping_only;
      lo.tenants = tenants;
      auto report = net::RunLoadDriver(lo);
      if (!report.ok()) {
        std::fprintf(stderr, "bench: %s\n",
                     report.status().ToString().c_str());
        rc = 1;
      } else {
        std::printf("%s\n", report->ToString().c_str());
        if (report->ok == 0) {
          std::fprintf(stderr, "bench: no request succeeded\n");
          rc = 1;
        }
      }
    }
    if (fuzz && rc == 0) {
      net::NetFuzzOptions fo;
      fo.host = host;
      fo.port = (*server)->port();
      fo.seed = seed;
      fo.rounds = fuzz_rounds;
      fo.clients = fuzz_clients;
      fo.max_frame_bytes = net_opts.max_frame_bytes;
      auto report = net::FuzzNetProtocol(fo);
      if (!report.ok()) {
        std::fprintf(stderr, "fuzz: %s\n",
                     report.status().ToString().c_str());
        rc = 1;
      } else {
        std::printf("%s\n", report->ToString().c_str());
      }
    }
    (*server)->BeginDrain();
    Status joined = (*server)->Join();
    if (!joined.ok()) {
      std::fprintf(stderr, "join: %s\n", joined.ToString().c_str());
      rc = 1;
    }
  } else {
    std::fprintf(stderr,
                 "lsgserved: %s (%zu tables, %zu rows), %d workers, "
                 "listening on %s:%d (%s), pid %d\n",
                 dataset.c_str(), (*db).num_tables(), (*db).TotalRows(),
                 workers, host.c_str(), (*server)->port(),
                 (*server)->poller_name(), static_cast<int>(getpid()));
    Status ran = (*server)->Run();
    if (!ran.ok()) {
      std::fprintf(stderr, "serve: %s\n", ran.ToString().c_str());
      rc = 1;
    }
  }
  g_server = nullptr;

  // Service after server: completion waiters are joined by Run/Join, so
  // nothing still depends on service futures.
  (*service)->Shutdown();

  obs::MetricsSnapshot snap = registry.Snapshot();
  std::printf("%s\n", snap.ToJson().c_str());
  if (!CheckConservation(snap)) rc = 1;
  return rc;
}
