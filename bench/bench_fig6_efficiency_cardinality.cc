// Reproduces Figure 6: time to generate N satisfying queries under
// cardinality constraints (training + inference for LearnedSQLGen).
#include "bench/figure_accuracy.h"

int main() {
  lsg::bench::RunEfficiencyFigure(lsg::ConstraintMetric::kCardinality,
                                  "Figure 6");
  return 0;
}
