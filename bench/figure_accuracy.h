#ifndef LEARNEDSQLGEN_BENCH_FIGURE_ACCURACY_H_
#define LEARNEDSQLGEN_BENCH_FIGURE_ACCURACY_H_

#include "bench/bench_common.h"

namespace lsg {
namespace bench {

/// Figures 4 & 5: generation accuracy of SQLSmith / Template /
/// LearnedSQLGen across point and range constraints on three datasets
/// (N queries per setting; accuracy = satisfied fraction).
inline void RunAccuracyFigure(ConstraintMetric metric, const char* figure) {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("%s: accuracy, %s constraints (N=%d, epochs=%d)",
                        figure,
                        metric == ConstraintMetric::kCardinality ? "cardinality"
                                                                 : "cost",
                        cfg.n, cfg.epochs));
  std::vector<ResultRow> point_rows, range_rows;
  for (const std::string& ds : DatasetNames()) {
    LearnedSqlGenOptions opts = DefaultOptions(cfg);
    DatasetContext ctx = MakeContext(ds, cfg, opts);
    const MetricDomain& dom = metric == ConstraintMetric::kCardinality
                                  ? ctx.card_domain
                                  : ctx.cost_domain;
    std::printf("[%s] domain [%s, %s]\n", ds.c_str(),
                HumanCount(dom.lo).c_str(), HumanCount(dom.hi).c_str());

    auto run_setting = [&](const Constraint& c, std::vector<ResultRow>* out) {
      ResultRow row;
      row.dataset = ds;
      row.setting = c.ToString();

      auto renv = MakeEnv(&ctx, c, opts.profile);
      RandomGenerator rnd(renv.get(), 11);
      auto r = rnd.GenerateBatch(cfg.n);
      LSG_CHECK(r.ok()) << r.status().ToString();
      row.sqlsmith = 100.0 * r->accuracy;

      auto tenv = MakeEnv(&ctx, c, opts.profile);
      TemplateGeneratorOptions topts;
      topts.seed_templates = TemplatesForDataset(ds);
      TemplateGenerator tgen(tenv.get(), topts);
      auto t = tgen.GenerateBatch(cfg.n);
      LSG_CHECK(t.ok()) << t.status().ToString();
      row.tmpl = 100.0 * t->accuracy;

      LSG_CHECK_OK(ctx.gen->Train(c));
      auto l = ctx.gen->GenerateBatch(cfg.n);
      LSG_CHECK(l.ok()) << l.status().ToString();
      row.learned = 100.0 * l->accuracy;

      std::printf("  %-22s smith=%6.2f%% tmpl=%6.2f%% learned=%6.2f%%\n",
                  row.setting.c_str(), row.sqlsmith, row.tmpl, row.learned);
      std::fflush(stdout);
      out->push_back(row);
    };

    for (const Constraint& c : PaperPointGrid(metric, dom)) {
      run_setting(c, &point_rows);
    }
    for (const Constraint& c : PaperRangeGrid(metric, dom)) {
      run_setting(c, &range_rows);
    }
  }
  std::printf("\n-- point constraints (accuracy %%; paper: Learned ~30%% "
              "above baselines) --\n");
  PrintSeries("accuracy/point", point_rows, /*lower_is_better=*/false);
  std::printf("\n-- range constraints (accuracy %%) --\n");
  PrintSeries("accuracy/range", range_rows, /*lower_is_better=*/false);
}

/// Figures 6 & 7: time to produce N satisfying queries (training +
/// inference for LearnedSQLGen). When a method exhausts its attempt budget
/// before reaching N, its time is linearly extrapolated (marked '~').
inline void RunEfficiencyFigure(ConstraintMetric metric, const char* figure) {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("%s: generation time, %s constraints (N=%d)", figure,
                        metric == ConstraintMetric::kCardinality ? "cardinality"
                                                                 : "cost",
                        cfg.n));
  std::vector<ResultRow> point_rows, range_rows;

  auto timed = [&](GenerationReport rep, int target) {
    double t = rep.total_seconds();
    if (rep.satisfied == 0) return t * target;  // hopeless: 1 never arrived
    if (rep.satisfied < target) {
      t = t * static_cast<double>(target) / rep.satisfied;
    }
    return t;
  };

  for (const std::string& ds : DatasetNames()) {
    LearnedSqlGenOptions opts = DefaultOptions(cfg);
    DatasetContext ctx = MakeContext(ds, cfg, opts);
    const MetricDomain& dom = metric == ConstraintMetric::kCardinality
                                  ? ctx.card_domain
                                  : ctx.cost_domain;

    auto run_setting = [&](const Constraint& c, std::vector<ResultRow>* out) {
      ResultRow row;
      row.dataset = ds;
      row.setting = c.ToString();

      auto renv = MakeEnv(&ctx, c, opts.profile);
      RandomGenerator rnd(renv.get(), 13);
      auto r = rnd.GenerateSatisfied(cfg.n, /*max_attempts=*/12000);
      LSG_CHECK(r.ok());
      row.sqlsmith = timed(std::move(r).value(), cfg.n);

      auto tenv = MakeEnv(&ctx, c, opts.profile);
      TemplateGeneratorOptions topts;
      topts.seed_templates = TemplatesForDataset(ds);
      TemplateGenerator tgen(tenv.get(), topts);
      auto t = tgen.GenerateSatisfied(cfg.n, /*max_attempts=*/60000);
      LSG_CHECK(t.ok());
      row.tmpl = timed(std::move(t).value(), cfg.n);

      LSG_CHECK_OK(ctx.gen->Train(c));
      auto l = ctx.gen->GenerateSatisfied(cfg.n);
      LSG_CHECK(l.ok());
      row.learned = timed(std::move(l).value(), cfg.n);

      std::printf("  %-22s smith=%8.2fs tmpl=%8.2fs learned=%8.2fs\n",
                  row.setting.c_str(), row.sqlsmith, row.tmpl, row.learned);
      std::fflush(stdout);
      out->push_back(row);
    };

    for (const Constraint& c : PaperPointGrid(metric, dom)) {
      run_setting(c, &point_rows);
    }
    for (const Constraint& c : PaperRangeGrid(metric, dom)) {
      run_setting(c, &range_rows);
    }
  }
  std::printf("\n-- point constraints (seconds; paper: Learned 10-35x "
              "faster) --\n");
  PrintSeries("time/point", point_rows, /*lower_is_better=*/true);
  std::printf("\n-- range constraints (seconds) --\n");
  PrintSeries("time/range", range_rows, /*lower_is_better=*/true);
}

}  // namespace bench
}  // namespace lsg

#endif  // LEARNEDSQLGEN_BENCH_FIGURE_ACCURACY_H_
