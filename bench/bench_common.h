#ifndef LEARNEDSQLGEN_BENCH_BENCH_COMMON_H_
#define LEARNEDSQLGEN_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/random_generator.h"
#include "baselines/template_generator.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/generator.h"
#include "datasets/benchmark_templates.h"
#include "fuzz/test_databases.h"

namespace lsg {
namespace bench {

/// Experiment scale knobs, overridable from the environment so full and
/// quick runs share one binary:
///   LSG_N       queries per setting            (default 120)
///   LSG_EPOCHS  training epochs per constraint (default 250)
///   LSG_SCALE   dataset scale factor           (default 1.0)
///   LSG_QUICK   =1 shrinks everything ~4x for smoke runs
struct BenchConfig {
  int n = 120;
  int epochs = 250;
  double scale = 1.0;

  static BenchConfig FromEnv() {
    BenchConfig c;
    // NOLINTBEGIN(concurrency-mt-unsafe): single-threaded bench setup
    if (const char* v = std::getenv("LSG_N")) c.n = std::atoi(v);
    if (const char* v = std::getenv("LSG_EPOCHS")) c.epochs = std::atoi(v);
    if (const char* v = std::getenv("LSG_SCALE")) c.scale = std::atof(v);
    if (const char* v = std::getenv("LSG_QUICK"); v != nullptr && v[0] == '1') {
    // NOLINTEND(concurrency-mt-unsafe)
      c.n /= 4;
      c.epochs /= 4;
      if (c.n < 10) c.n = 10;
      if (c.epochs < 10) c.epochs = 10;
    }
    return c;
  }
};

/// The paper's three benchmarks.
inline std::vector<std::string> DatasetNames() {
  return {"TPC-H", "JOB", "XueTang"};
}

inline Database BuildDataset(const std::string& name, double scale) {
  auto db = BuildNamedDatabase(name, scale);
  LSG_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// One ready-to-use experiment context: database + pipeline facade.
struct DatasetContext {
  std::string name;
  Database db;
  std::unique_ptr<LearnedSqlGen> gen;
  MetricDomain card_domain;
  MetricDomain cost_domain;
};

inline LearnedSqlGenOptions DefaultOptions(const BenchConfig& cfg,
                                           uint64_t seed = 20220612) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = cfg.epochs;
  opts.trainer.batch_size = 16;
  opts.seed = seed;
  return opts;
}

/// Builds a dataset context and probes the reachable metric domains used to
/// place the paper's constraint grids on scaled data.
inline DatasetContext MakeContext(const std::string& name,
                                  const BenchConfig& cfg,
                                  LearnedSqlGenOptions opts) {
  DatasetContext ctx;
  ctx.name = name;
  ctx.db = BuildDataset(name, cfg.scale);
  auto gen = LearnedSqlGen::Create(&ctx.db, opts);
  LSG_CHECK(gen.ok()) << gen.status().ToString();
  ctx.gen = std::move(gen).value();

  EnvironmentOptions eo;
  eo.profile = opts.profile;
  Rng rng(7);
  {
    SqlGenEnvironment probe(&ctx.db, &ctx.gen->vocab(), &ctx.gen->estimator(),
                            &ctx.gen->cost_model(),
                            Constraint::Point(ConstraintMetric::kCardinality, 1),
                            eo);
    ctx.card_domain = ProbeMetricDomain(&probe, 400, &rng, 0.2, 0.95);
  }
  {
    SqlGenEnvironment probe(&ctx.db, &ctx.gen->vocab(), &ctx.gen->estimator(),
                            &ctx.gen->cost_model(),
                            Constraint::Point(ConstraintMetric::kCost, 1), eo);
    ctx.cost_domain = ProbeMetricDomain(&probe, 400, &rng, 0.2, 0.95);
  }
  return ctx;
}

/// The paper's point grid: 4 geometric points across the reachable domain
/// (its 10², 10⁴, 10⁶, 10⁸ rescaled). The low end is floored at 5 — point
/// targets below that collapse into the empty/singleton-result noise.
inline std::vector<Constraint> PaperPointGrid(ConstraintMetric metric,
                                              const MetricDomain& domain) {
  MetricDomain d = domain;
  d.lo = std::max(5.0, d.lo);
  if (d.hi < d.lo * 2) d.hi = d.lo * 2;
  return PointGrid(metric, d, 4);
}

/// The paper's widening ranges ([1k,2k] .. [1k,8k] rescaled): the paper
/// anchors its ranges mid-scale (1k on databases whose results reach many
/// millions), so the base sits near the domain's geometric mean, clamped
/// so [base, 8·base] stays reachable.
inline std::vector<Constraint> PaperRangeGrid(ConstraintMetric metric,
                                              const MetricDomain& domain) {
  double base = std::sqrt(std::max(1.0, domain.lo) * domain.hi) / 2.0;
  base = std::max(base, 5.0);
  if (base * 8.0 > domain.hi) base = std::max(1.0, domain.hi / 8.0);
  return WideningRanges(metric, base);
}

/// A fresh environment for baselines or rollouts under constraint `c`.
/// Pass a FeedbackCache to share memoized estimates across environments
/// (e.g. the meta-critic's per-task rollout envs over one database).
inline std::unique_ptr<SqlGenEnvironment> MakeEnv(
    DatasetContext* ctx, const Constraint& c, QueryProfile profile,
    FeedbackCache* feedback_cache = nullptr) {
  EnvironmentOptions eo;
  eo.profile = profile;
  eo.feedback_cache = feedback_cache;
  return std::make_unique<SqlGenEnvironment>(
      &ctx->db, &ctx->gen->vocab(), &ctx->gen->estimator(),
      &ctx->gen->cost_model(), c, eo);
}

// ------------------------------------------------------ json output

/// `--json OUT` support: benches that emit machine-readable rows mirror
/// them into OUT as one JSON array (stdout keeps the human stream).
/// Returns "" when the flag is absent.
inline std::string JsonOutPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// Collects JSON object rows and writes them as a single well-formed JSON
/// array on Flush()/destruction. Inert when constructed with an empty path,
/// so benches can call AddRow unconditionally.
class JsonRowWriter {
 public:
  explicit JsonRowWriter(std::string path) : path_(std::move(path)) {}
  ~JsonRowWriter() { Flush(); }

  void AddRow(std::string row) {
    if (!path_.empty()) rows_.push_back(std::move(row));
  }

  void Flush() {
    if (path_.empty() || flushed_) return;
    flushed_ = true;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --json output %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
  bool flushed_ = false;
};

// ------------------------------------------------------ result printing

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

struct ResultRow {
  std::string dataset;
  std::string setting;
  double sqlsmith = 0;
  double tmpl = 0;
  double learned = 0;
};

/// Prints the paper's three-series table plus the shape verdict (who wins
/// and by what factor).
inline void PrintSeries(const std::string& metric_name,
                        const std::vector<ResultRow>& rows,
                        bool lower_is_better) {
  std::printf("%-9s %-22s %12s %12s %14s %9s\n", "dataset", "setting",
              "SQLSmith", "Template", "LearnedSQLGen", "winner");
  int learned_wins = 0;
  for (const ResultRow& r : rows) {
    const char* winner = "Learned";
    bool lw = lower_is_better
                  ? (r.learned <= r.sqlsmith && r.learned <= r.tmpl)
                  : (r.learned >= r.sqlsmith && r.learned >= r.tmpl);
    if (!lw) {
      winner = lower_is_better ? (r.sqlsmith < r.tmpl ? "SQLSmith" : "Template")
                               : (r.sqlsmith > r.tmpl ? "SQLSmith" : "Template");
    } else {
      ++learned_wins;
    }
    std::printf("%-9s %-22s %12.4g %12.4g %14.4g %9s\n", r.dataset.c_str(),
                r.setting.c_str(), r.sqlsmith, r.tmpl, r.learned, winner);
  }
  std::printf("shape check [%s]: LearnedSQLGen wins %d / %zu settings\n",
              metric_name.c_str(), learned_wins, rows.size());
}

}  // namespace bench
}  // namespace lsg

#endif  // LEARNEDSQLGEN_BENCH_BENCH_COMMON_H_
