// Service throughput microbench: queries/sec and cache-hit rate for a
// mixed constraint workload at 1, 2, 4, 8 workers. Each worker count runs
// the same request sequence against a fresh service, so scaling numbers
// are apples-to-apples. Results are emitted as one JSON row per setting:
//
//   {"bench": "service_throughput", "dataset": "TPC-H", "workers": 4, ...}
//
// Scale knobs (see bench_common.h): LSG_N is repurposed as the request
// count, LSG_EPOCHS as per-model training epochs, LSG_QUICK shrinks both.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/generation_service.h"

namespace lsg {
namespace bench {
namespace {

// Mixed workload over a probed metric domain: point + range, card + cost,
// cycled so repeats of a bucket arrive and exercise the cache.
std::vector<Constraint> MixedWorkload(const DatasetContext& ctx,
                                      int requests) {
  std::vector<Constraint> unique;
  for (const Constraint& c :
       PaperPointGrid(ConstraintMetric::kCardinality, ctx.card_domain)) {
    unique.push_back(c);
  }
  for (const Constraint& c :
       PaperRangeGrid(ConstraintMetric::kCardinality, ctx.card_domain)) {
    unique.push_back(c);
  }
  for (const Constraint& c :
       PaperPointGrid(ConstraintMetric::kCost, ctx.cost_domain)) {
    unique.push_back(c);
  }
  std::vector<Constraint> workload;
  workload.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    workload.push_back(unique[i % unique.size()]);
  }
  return workload;
}

void RunAtConcurrency(const Database* db,
                      const std::vector<Constraint>& workload,
                      const std::string& dataset, int workers, int epochs,
                      int n_per_request, JsonRowWriter* json) {
  GenerationServiceOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = workload.size();
  opts.registry.capacity = 16;  // hold the full unique set: hits are real
  opts.gen.train_epochs = epochs;
  opts.gen.trainer.batch_size = 8;
  opts.gen.seed = 20220612;
  // All workers share one estimate memo, as lsgserve wires it in prod.
  FeedbackCache feedback_cache;
  opts.feedback_cache = &feedback_cache;

  auto service = GenerationService::Create(db, opts);
  LSG_CHECK(service.ok()) << service.status().ToString();

  Stopwatch wall;
  std::vector<std::future<GenerationResponse>> futures;
  futures.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    GenerationRequest req;
    req.constraint = workload[i];
    req.n = n_per_request;
    req.batch = true;
    req.id = i + 1;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  uint64_t queries = 0;
  for (auto& f : futures) {
    GenerationResponse r = f.get();
    if (r.status.ok()) queries += r.report.queries.size();
  }
  (*service)->Shutdown();
  double seconds = wall.ElapsedSeconds();

  ServiceMetricsSnapshot m = (*service)->Metrics();
  std::string row = StrFormat(
      "{\"bench\": \"service_throughput\", \"dataset\": \"%s\", "
      "\"workers\": %d, \"requests\": %zu, \"seconds\": %.3f, "
      "\"requests_per_sec\": %.3f, \"queries_per_sec\": %.3f, "
      "\"cache_hit_rate\": %.4f, \"satisfied_rate\": %.4f, "
      "\"trainings\": %llu, \"queue_depth_high_water\": %llu, "
      "\"busy_seconds\": %.3f}",
      dataset.c_str(), workers, workload.size(), seconds,
      static_cast<double>(workload.size()) / seconds,
      static_cast<double>(queries) / seconds, m.cache_hit_rate(),
      m.satisfied_rate(), static_cast<unsigned long long>(m.trainings),
      static_cast<unsigned long long>(m.queue_depth_high_water),
      m.busy_seconds);
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
  if (json != nullptr) json->AddRow(std::move(row));
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main(int argc, char** argv) {
  using namespace lsg;
  using namespace lsg::bench;

  BenchConfig cfg = BenchConfig::FromEnv();
  JsonRowWriter json(JsonOutPathFromArgs(argc, argv));
  // Service-bench scale: LSG_N requests (default shrunk: every miss is a
  // full training run), LSG_EPOCHS/5 epochs per model.
  const int requests = std::max(8, cfg.n / 4);
  const int epochs = std::max(10, cfg.epochs / 5);
  const int n_per_request = 5;

  PrintHeader("Service throughput (mixed constraint workload)");
  const std::string dataset = "TPC-H";
  DatasetContext ctx = MakeContext(dataset, cfg, DefaultOptions(cfg));
  std::vector<Constraint> workload = MixedWorkload(ctx, requests);
  std::printf("%d requests over %d unique buckets, %d epochs/model\n",
              requests, std::min(requests, 12), epochs);

  for (int workers : {1, 2, 4, 8}) {
    RunAtConcurrency(&ctx.db, workload, dataset, workers, epochs,
                     n_per_request, &json);
  }
  return 0;
}
