// Service throughput microbench in two phases:
//
//  1. Mixed constraint workload at {1,2,4,8} workers x max_batch {1,8,32}.
//     Each setting runs the same request sequence against a fresh service,
//     so scaling numbers are apples-to-apples (training dominates here).
//  2. Pure generation throughput: one bucket is trained once, then a burst
//     of same-bucket batch-mode requests is decoded at max_batch {1,8,32}
//     on a single worker. This isolates the batched-GEMM decode path — the
//     speedup over max_batch=1 is the cross-request batching win.
//
// Results are emitted as one JSON row per setting:
//
//   {"bench": "service_throughput", "dataset": "TPC-H", "workers": 4, ...}
//   {"bench": "service_gen_throughput", "max_batch": 8, ...}
//
// Scale knobs (see bench_common.h): LSG_N is repurposed as the request
// count, LSG_EPOCHS as per-model training epochs, LSG_QUICK shrinks both.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics_registry.h"
#include "service/generation_service.h"

namespace lsg {
namespace bench {
namespace {

// Mixed workload over a probed metric domain: point + range, card + cost,
// cycled so repeats of a bucket arrive and exercise the cache.
std::vector<Constraint> MixedWorkload(const DatasetContext& ctx,
                                      int requests) {
  std::vector<Constraint> unique;
  for (const Constraint& c :
       PaperPointGrid(ConstraintMetric::kCardinality, ctx.card_domain)) {
    unique.push_back(c);
  }
  for (const Constraint& c :
       PaperRangeGrid(ConstraintMetric::kCardinality, ctx.card_domain)) {
    unique.push_back(c);
  }
  for (const Constraint& c :
       PaperPointGrid(ConstraintMetric::kCost, ctx.cost_domain)) {
    unique.push_back(c);
  }
  std::vector<Constraint> workload;
  workload.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    workload.push_back(unique[i % unique.size()]);
  }
  return workload;
}

void RunAtConcurrency(const Database* db,
                      const std::vector<Constraint>& workload,
                      const std::string& dataset, int workers, int max_batch,
                      int epochs, int n_per_request, JsonRowWriter* json) {
  GenerationServiceOptions opts;
  opts.num_workers = workers;
  opts.max_batch = max_batch;
  opts.queue_capacity = workload.size();
  opts.registry.capacity = 16;  // hold the full unique set: hits are real
  opts.gen.train_epochs = epochs;
  opts.gen.trainer.batch_size = 8;
  opts.gen.seed = 20220612;
  // All workers share one estimate memo, as lsgserve wires it in prod.
  FeedbackCache feedback_cache;
  opts.feedback_cache = &feedback_cache;
  obs::MetricsRegistry registry;
  opts.metrics_registry = &registry;

  auto service = GenerationService::Create(db, opts);
  LSG_CHECK(service.ok()) << service.status().ToString();

  Stopwatch wall;
  std::vector<std::future<GenerationResponse>> futures;
  futures.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    GenerationRequest req;
    req.constraint = workload[i];
    req.n = n_per_request;
    req.batch = true;
    req.id = i + 1;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  uint64_t queries = 0;
  for (auto& f : futures) {
    GenerationResponse r = f.get();
    if (r.status.ok()) queries += r.report.queries.size();
  }
  (*service)->Shutdown();
  double seconds = wall.ElapsedSeconds();

  ServiceMetricsSnapshot m = (*service)->Metrics();
  obs::HistogramStats batches =
      registry.GetHistogram("service.batch_size").Snapshot();
  std::string row = StrFormat(
      "{\"bench\": \"service_throughput\", \"dataset\": \"%s\", "
      "\"workers\": %d, \"max_batch\": %d, \"requests\": %zu, "
      "\"seconds\": %.3f, "
      "\"requests_per_sec\": %.3f, \"queries_per_sec\": %.3f, "
      "\"mean_batch_size\": %.3f, "
      "\"cache_hit_rate\": %.4f, \"satisfied_rate\": %.4f, "
      "\"trainings\": %llu, \"queue_depth_high_water\": %llu, "
      "\"busy_seconds\": %.3f}",
      dataset.c_str(), workers, max_batch, workload.size(), seconds,
      static_cast<double>(workload.size()) / seconds,
      static_cast<double>(queries) / seconds, batches.mean,
      m.cache_hit_rate(), m.satisfied_rate(),
      static_cast<unsigned long long>(m.trainings),
      static_cast<unsigned long long>(m.queue_depth_high_water),
      m.busy_seconds);
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
  if (json != nullptr) json->AddRow(std::move(row));
}

// Phase 2: decode-only throughput against a single warm bucket. Returns
// queries/sec so the caller can report the batched speedup.
double RunGenerationThroughput(const Database* db, const Constraint& bucket,
                               const std::string& dataset, int max_batch,
                               int requests, int epochs, int n_per_request,
                               JsonRowWriter* json) {
  GenerationServiceOptions opts;
  opts.num_workers = 1;  // one worker: any speedup is pure SIMD batching
  opts.max_batch = max_batch;
  opts.queue_capacity = static_cast<size_t>(requests);
  opts.registry.capacity = 4;
  opts.gen.train_epochs = epochs;
  opts.gen.trainer.batch_size = 8;
  opts.gen.seed = 20220612;
  FeedbackCache feedback_cache;
  opts.feedback_cache = &feedback_cache;
  obs::MetricsRegistry registry;
  opts.metrics_registry = &registry;

  auto service = GenerationService::Create(db, opts);
  LSG_CHECK(service.ok()) << service.status().ToString();

  // Warm the bucket so the measured burst is decode, not training.
  {
    GenerationRequest warm;
    warm.constraint = bucket;
    warm.n = 1;
    warm.batch = true;
    warm.id = 1;
    GenerationResponse r = (*service)->Submit(std::move(warm)).get();
    LSG_CHECK(r.status.ok()) << r.status.ToString();
  }

  Stopwatch wall;
  std::vector<std::future<GenerationResponse>> futures;
  futures.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    GenerationRequest req;
    req.constraint = bucket;
    req.n = n_per_request;
    req.batch = true;  // fixed n attempts per request: comparable work
    req.id = static_cast<uint64_t>(i) + 2;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  uint64_t queries = 0;
  for (auto& f : futures) {
    GenerationResponse r = f.get();
    if (r.status.ok()) queries += r.report.queries.size();
  }
  double seconds = wall.ElapsedSeconds();
  (*service)->Shutdown();

  obs::HistogramStats batches =
      registry.GetHistogram("service.batch_size").Snapshot();
  double qps = static_cast<double>(queries) / seconds;
  std::string row = StrFormat(
      "{\"bench\": \"service_gen_throughput\", \"dataset\": \"%s\", "
      "\"workers\": 1, \"max_batch\": %d, \"requests\": %d, "
      "\"queries\": %llu, \"seconds\": %.3f, \"queries_per_sec\": %.3f, "
      "\"mean_batch_size\": %.3f}",
      dataset.c_str(), max_batch, requests,
      static_cast<unsigned long long>(queries), seconds, qps, batches.mean);
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
  if (json != nullptr) json->AddRow(std::move(row));
  return qps;
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main(int argc, char** argv) {
  using namespace lsg;
  using namespace lsg::bench;

  BenchConfig cfg = BenchConfig::FromEnv();
  JsonRowWriter json(JsonOutPathFromArgs(argc, argv));
  // Service-bench scale: LSG_N requests (default shrunk: every miss is a
  // full training run), LSG_EPOCHS/5 epochs per model.
  const int requests = std::max(8, cfg.n / 4);
  const int epochs = std::max(10, cfg.epochs / 5);
  const int n_per_request = 5;

  PrintHeader("Service throughput (mixed constraint workload)");
  const std::string dataset = "TPC-H";
  DatasetContext ctx = MakeContext(dataset, cfg, DefaultOptions(cfg));
  std::vector<Constraint> workload = MixedWorkload(ctx, requests);
  std::printf("%d requests over %d unique buckets, %d epochs/model\n",
              requests, std::min(requests, 12), epochs);

  for (int workers : {1, 2, 4, 8}) {
    for (int max_batch : {1, 8, 32}) {
      RunAtConcurrency(&ctx.db, workload, dataset, workers, max_batch, epochs,
                       n_per_request, &json);
    }
  }

  PrintHeader("Generation throughput (one warm bucket, decode only)");
  const Constraint bucket =
      PaperRangeGrid(ConstraintMetric::kCardinality, ctx.card_domain)[1];
  const int gen_requests = std::max(96, cfg.n);
  const int gen_n = 8;
  double base_qps = 0.0;
  for (int max_batch : {1, 8, 32}) {
    double qps = RunGenerationThroughput(&ctx.db, bucket, dataset, max_batch,
                                         gen_requests, epochs, gen_n, &json);
    if (max_batch == 1) {
      base_qps = qps;
    } else if (base_qps > 0.0) {
      std::printf("  max_batch=%d speedup vs 1: %.2fx\n", max_batch,
                  qps / base_qps);
    }
  }
  return 0;
}
