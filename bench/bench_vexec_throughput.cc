// Vectorized-execution throughput bench: the reference tuple-at-a-time
// Executor vs the columnar batch engine (src/vexec/) on the bundled
// datasets at 1x / 100x / 1000x row scale and 1–8 morsel workers. Each
// setting runs a fixed representative query mix — filtered scans, an FK
// hash join, and a join + GROUP BY — built generically from the dataset's
// catalog so all three benchmarks exercise the same shapes. Cardinalities
// are cross-checked between engines on every measurement.
//
// Emitted as one JSON row per (dataset, scale, query, engine, workers):
//
//   {"bench": "vexec_throughput", "dataset": "TPC-H", "row_scale": 100, ...}
//
// Wall-clock guard: only TPC-H runs the 1000x point (the reference engine
// is the bottleneck there); the skip is logged, not silent. On a 1-CPU
// host the worker sweep is expected flat — the speedup comes from the
// typed batch kernels, not parallelism.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "exec/executor.h"
#include "vexec/vectorized_engine.h"

namespace lsg {
namespace bench {
namespace {

struct BenchQuery {
  std::string name;
  SelectQuery q;
};

int LargestTableIdx(const Database& db) {
  int best = 0;
  for (size_t i = 1; i < db.num_tables(); ++i) {
    if (db.tables()[i].num_rows() > db.tables()[best].num_rows()) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// First non-PK INT64 column of `t` (PK as fallback): the filter target.
int FilterColumn(const Table& t) {
  int pk = t.schema().PrimaryKeyColumn();
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().column(c).type == DataType::kInt64 &&
        static_cast<int>(c) != pk) {
      return static_cast<int>(c);
    }
  }
  return pk >= 0 ? pk : 0;
}

/// A non-null probe value drawn from `frac` of the way through the column,
/// so comparison predicates get mid-range selectivity instead of matching
/// nothing or everything.
Value ProbeValue(const Table& t, int col, double frac) {
  size_t start = static_cast<size_t>(static_cast<double>(t.num_rows()) * frac);
  for (size_t r = start; r < t.num_rows(); ++r) {
    Value v = t.GetValue(r, col);
    if (!v.is_null()) return v;
  }
  return Value(static_cast<int64_t>(0));
}

Predicate ValuePred(int table_idx, int column_idx, CompareOp op, Value v) {
  Predicate p;
  p.kind = PredicateKind::kValue;
  p.column = ColumnRef{table_idx, column_idx};
  p.op = op;
  p.value = std::move(v);
  return p;
}

/// The FK edge whose referencing (fact) side is largest — the most
/// join-work per probe the dataset offers.
const ForeignKey* BiggestFkEdge(const Database& db) {
  const ForeignKey* best = nullptr;
  size_t best_rows = 0;
  for (const ForeignKey& fk : db.catalog().foreign_keys()) {
    const Table* from = db.FindTable(fk.from_table);
    if (from != nullptr && from->num_rows() > best_rows) {
      best_rows = from->num_rows();
      best = &fk;
    }
  }
  return best;
}

/// First string-ish column (group-by target), any column as fallback.
int GroupColumn(const Table& t) {
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    DataType ty = t.schema().column(c).type;
    if (ty == DataType::kString || ty == DataType::kCategorical) {
      return static_cast<int>(c);
    }
  }
  return 0;
}

/// The representative mix, built from the catalog: two filtered scans over
/// the largest table, the biggest FK hash join, and that join grouped.
std::vector<BenchQuery> BuildQueries(const Database& db) {
  std::vector<BenchQuery> out;
  const int big = LargestTableIdx(db);
  const Table& bt = db.tables()[big];
  const int fc = FilterColumn(bt);

  {
    BenchQuery b;
    b.name = "scan_filter";
    b.q.tables = {big};
    b.q.items = {SelectItem{AggFunc::kNone, ColumnRef{big, 0}}};
    b.q.where.predicates.push_back(
        ValuePred(big, fc, CompareOp::kLe, ProbeValue(bt, fc, 0.5)));
    out.push_back(std::move(b));
  }
  {
    // Two conjunctive predicates: amplifies per-row interpretation
    // overhead in the reference engine vs one typed kernel pass each.
    BenchQuery b;
    b.name = "scan_filter2";
    b.q.tables = {big};
    b.q.items = {SelectItem{AggFunc::kNone, ColumnRef{big, 0}}};
    b.q.where.predicates.push_back(
        ValuePred(big, fc, CompareOp::kLe, ProbeValue(bt, fc, 0.75)));
    b.q.where.predicates.push_back(
        ValuePred(big, fc, CompareOp::kGt, ProbeValue(bt, fc, 0.25)));
    b.q.where.connectors = {BoolConn::kAnd};
    out.push_back(std::move(b));
  }

  const ForeignKey* fk = BiggestFkEdge(db);
  if (fk != nullptr) {
    const int from = db.catalog().FindTable(fk->from_table);
    const int to = db.catalog().FindTable(fk->to_table);
    {
      BenchQuery b;
      b.name = "fk_join";
      b.q.tables = {from, to};
      b.q.items = {SelectItem{AggFunc::kNone, ColumnRef{from, 0}}};
      out.push_back(std::move(b));
    }
    {
      BenchQuery b;
      b.name = "join_group";
      b.q.tables = {from, to};
      b.q.items = {SelectItem{AggFunc::kCount, ColumnRef{from, 0}}};
      const int gc = GroupColumn(db.tables()[to]);
      b.q.group_by = {ColumnRef{to, gc}};
      out.push_back(std::move(b));
    }
  }
  return out;
}

struct Timing {
  double ns_per_query = 0;
  uint64_t cardinality = 0;
};

Timing TimeEngine(const ExecutionBackend& eng, const SelectQuery& q,
                  int reps) {
  Timing t;
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    // materialize=false is the execution-grounded feedback configuration:
    // training consumes the true cardinality, not the value column. (The
    // differential tests and the fuzz oracle cover the materializing
    // path.)
    auto r = eng.ExecuteSelect(q, /*materialize_first_column=*/false);
    LSG_CHECK(r.ok()) << eng.name() << ": " << r.status().ToString();
    t.cardinality = r->cardinality;
  }
  t.ns_per_query = sw.ElapsedSeconds() * 1e9 / reps;
  return t;
}

void EmitRow(JsonRowWriter* json, const std::string& dataset,
             double row_scale, size_t total_rows, const std::string& query,
             const char* engine, int workers, int reps, const Timing& t,
             double speedup) {
  std::string row = StrFormat(
      "{\"bench\": \"vexec_throughput\", \"dataset\": \"%s\", "
      "\"row_scale\": %.0f, \"total_rows\": %zu, \"query\": \"%s\", "
      "\"engine\": \"%s\", \"workers\": %d, \"reps\": %d, "
      "\"ns_per_query\": %.0f, \"cardinality\": %llu, "
      "\"speedup_vs_reference\": %.2f}",
      dataset.c_str(), row_scale, total_rows, query.c_str(), engine, workers,
      reps, t.ns_per_query, static_cast<unsigned long long>(t.cardinality),
      speedup);
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
  if (json != nullptr) json->AddRow(std::move(row));
}

void RunDatasetAtScale(const std::string& dataset, double row_scale,
                       int reps, JsonRowWriter* json) {
  Database db = BuildDataset(dataset, row_scale);
  std::printf("-- %s @ %.0fx: %zu total rows, %d reps/query\n",
              dataset.c_str(), row_scale, db.TotalRows(), reps);
  Executor ref(&db);
  for (const BenchQuery& b : BuildQueries(db)) {
    Timing rt = TimeEngine(ref, b.q, reps);
    EmitRow(json, dataset, row_scale, db.TotalRows(), b.name, "reference", 1,
            reps, rt, 1.0);
    for (int workers : {1, 2, 4, 8}) {
      vexec::VexecOptions vo;
      vo.workers = workers;
      vexec::VectorizedEngine vec(&db, vo);
      Timing vt = TimeEngine(vec, b.q, reps);
      LSG_CHECK(vt.cardinality == rt.cardinality)
          << dataset << "/" << b.name << ": vectorized=" << vt.cardinality
          << " reference=" << rt.cardinality;
      EmitRow(json, dataset, row_scale, db.TotalRows(), b.name, "vectorized",
              workers, reps, vt, rt.ns_per_query / vt.ns_per_query);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main(int argc, char** argv) {
  using namespace lsg;
  using namespace lsg::bench;

  JsonRowWriter json(JsonOutPathFromArgs(argc, argv));
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded bench setup
  const bool quick = std::getenv("LSG_QUICK") != nullptr;

  PrintHeader("Vectorized execution throughput (vexec vs reference)");
  std::printf("queries verified cross-engine on every measurement; "
              "worker sweep is morsel parallelism (flat on 1-CPU hosts)\n");

  for (const std::string& dataset : DatasetNames()) {
    for (double row_scale : {1.0, 100.0, 1000.0}) {
      if (row_scale == 1000.0 && dataset != "TPC-H") {
        std::printf("-- %s @ 1000x skipped (wall-clock guard: the "
                    "reference engine dominates; TPC-H covers 10^6)\n",
                    dataset.c_str());
        continue;
      }
      int reps = row_scale >= 1000.0 ? 2 : (row_scale >= 100.0 ? 5 : 20);
      if (quick) {
        reps = 1;
        if (row_scale >= 1000.0) {
          std::printf("-- %s @ 1000x skipped (LSG_QUICK)\n", dataset.c_str());
          continue;
        }
      }
      RunDatasetAtScale(dataset, row_scale, reps, &json);
    }
  }
  return 0;
}
