// Reproduces Figure 4: accuracy of SQLSmith / Template / LearnedSQLGen for
// point and range cardinality constraints on TPC-H / JOB / XueTang.
#include "bench/figure_accuracy.h"

int main() {
  lsg::bench::RunAccuracyFigure(lsg::ConstraintMetric::kCardinality,
                                "Figure 4");
  return 0;
}
