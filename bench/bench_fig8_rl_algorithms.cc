// Reproduces Figure 8: actor-critic (LearnedSQLGen) vs plain REINFORCE on
// TPC-H — (a) accuracy per range constraint, (b) time to N satisfying
// queries, (c) average-reward training trace.
#include "bench/bench_common.h"

namespace lsg {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("Figure 8: REINFORCE vs actor-critic (TPC-H, N=%d)",
                        cfg.n));
  LearnedSqlGenOptions ac_opts = DefaultOptions(cfg, /*seed=*/8001);
  LearnedSqlGenOptions rf_opts = DefaultOptions(cfg, /*seed=*/8001);
  rf_opts.use_reinforce = true;

  DatasetContext ctx = MakeContext("TPC-H", cfg, ac_opts);
  Database rf_db = BuildDataset("TPC-H", cfg.scale);
  auto rf_gen = LearnedSqlGen::Create(&rf_db, rf_opts);
  LSG_CHECK(rf_gen.ok());

  std::vector<Constraint> ranges =
      PaperRangeGrid(ConstraintMetric::kCardinality, ctx.card_domain);

  std::printf("\n(a,b) accuracy and time per range constraint\n");
  std::printf("%-22s %12s %12s %14s %14s\n", "setting", "RF acc%", "AC acc%",
              "RF time(s)", "AC time(s)");
  double ac_acc_sum = 0, rf_acc_sum = 0;
  std::vector<EpochStats> ac_trace, rf_trace;
  for (size_t i = 0; i < ranges.size(); ++i) {
    const Constraint& c = ranges[i];
    LSG_CHECK_OK(ctx.gen->Train(c));
    if (i == 0) ac_trace = ctx.gen->trace();
    auto ac_batch = ctx.gen->GenerateBatch(cfg.n);
    LSG_CHECK(ac_batch.ok());
    auto ac_sat = ctx.gen->GenerateSatisfied(cfg.n);
    LSG_CHECK(ac_sat.ok());

    LSG_CHECK_OK((*rf_gen)->Train(c));
    if (i == 0) rf_trace = (*rf_gen)->trace();
    auto rf_batch = (*rf_gen)->GenerateBatch(cfg.n);
    LSG_CHECK(rf_batch.ok());
    auto rf_sat = (*rf_gen)->GenerateSatisfied(cfg.n);
    LSG_CHECK(rf_sat.ok());

    auto scale_time = [&](const GenerationReport& rep) {
      double t = rep.total_seconds();
      if (rep.satisfied > 0 && rep.satisfied < cfg.n) {
        t *= static_cast<double>(cfg.n) / rep.satisfied;
      }
      return t;
    };
    std::printf("%-22s %12.2f %12.2f %14.2f %14.2f\n", c.ToString().c_str(),
                100 * rf_batch->accuracy, 100 * ac_batch->accuracy,
                scale_time(*rf_sat), scale_time(*ac_sat));
    std::fflush(stdout);
    ac_acc_sum += ac_batch->accuracy;
    rf_acc_sum += rf_batch->accuracy;
  }
  std::printf("shape check: AC mean accuracy %.2f%% vs REINFORCE %.2f%% "
              "(paper: AC ~9%% higher)\n",
              100 * ac_acc_sum / ranges.size(),
              100 * rf_acc_sum / ranges.size());

  std::printf("\n(c) training trace, %s (mean batch reward per epoch)\n",
              ranges[0].ToString().c_str());
  std::printf("%8s %12s %12s\n", "epoch", "REINFORCE", "ActorCritic");
  size_t epochs = std::min(ac_trace.size(), rf_trace.size());
  for (size_t e = 0; e < epochs; e += std::max<size_t>(1, epochs / 20)) {
    std::printf("%8zu %12.3f %12.3f\n", e, rf_trace[e].mean_total_reward,
                ac_trace[e].mean_total_reward);
  }
  double ac_late = 0, rf_late = 0;
  size_t tail = std::max<size_t>(1, epochs / 5);
  for (size_t e = epochs - tail; e < epochs; ++e) {
    ac_late += ac_trace[e].mean_total_reward;
    rf_late += rf_trace[e].mean_total_reward;
  }
  std::printf("shape check: late-training mean reward AC %.3f vs RF %.3f "
              "(paper: AC converges higher/steadier)\n", ac_late / tail,
              rf_late / tail);
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
