// Reproduces Figure 10: the case study of generated-query diversity and
// complexity on TPC-H — join-table counts (a), nested fraction (b),
// aggregate fraction (c), predicate histogram (d), query types (e), and
// token-length histogram (f). Also runs the entropy-regularization
// ablation (λ=0 vs λ=0.01) that the paper credits for diversity.
#include <set>

#include "bench/bench_common.h"

namespace lsg {
namespace bench {
namespace {

WorkloadDistribution DistributionFor(DatasetContext* ctx, const Constraint& c,
                                     int n) {
  LSG_CHECK_OK(ctx->gen->Train(c));
  auto rep = ctx->gen->GenerateBatch(n);
  LSG_CHECK(rep.ok());
  WorkloadDistribution dist;
  for (const GeneratedQuery& q : rep->queries) {
    if (q.satisfied) dist.Add(q.features);
  }
  std::printf("(constraint %s: %d/%d generated queries satisfied)\n",
              c.ToString().c_str(), dist.total(), n);
  return dist;
}

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("Figure 10: generated-query distribution "
                        "(TPC-H, N=%d)", cfg.n));

  // Panels (a)(b)(c)(d)(f) study SELECT structure (joins, nesting,
  // aggregates, predicates, lengths): rich SELECT grammar, deeper nesting.
  LearnedSqlGenOptions opts = DefaultOptions(cfg, 10001);
  opts.profile.max_nesting_depth = 2;
  opts.profile.max_joins = 4;
  DatasetContext ctx = MakeContext("TPC-H", cfg, opts);

  // Panels (a)(b)(c)(f): a high cost point — expensive queries need joins
  // and subqueries (paper: Cost = 10^6 on full-size TPC-H).
  Constraint cost_point = Constraint::Point(
      ConstraintMetric::kCost,
      GeometricGrid(ctx.cost_domain.lo, ctx.cost_domain.hi, 3)[2]);
  std::printf("\n[a,b,c,f] %s\n", cost_point.ToString().c_str());
  WorkloadDistribution cost_dist = DistributionFor(&ctx, cost_point, cfg.n);
  std::printf("%s", cost_dist.ToString().c_str());
  std::printf("shape check: paper reports multi-join >50%%, nested ~47%%, "
              "aggregates ~35%% on this panel\n");

  // Panel (d): predicate counts under a low cardinality range (paper:
  // Card in [1k, 8k] — "satisfied queries usually contain multiple
  // predicates to reduce the cardinality").
  Constraint card_range = PaperRangeGrid(ConstraintMetric::kCardinality,
                                         ctx.card_domain)[3];
  std::printf("\n[d] %s\n", card_range.ToString().c_str());
  WorkloadDistribution card_dist = DistributionFor(&ctx, card_range, cfg.n);
  std::printf("%s", card_dist.ToString().c_str());

  // Panel (e): query-type mix needs the full grammar including DML
  // (the paper's extendable FSM, §5).
  LearnedSqlGenOptions full_opts = DefaultOptions(cfg, 10003);
  full_opts.profile = QueryProfile::Full();
  DatasetContext full_ctx = MakeContext("TPC-H", cfg, full_opts);
  std::printf("\n[e] %s, full grammar (all query types)\n",
              card_range.ToString().c_str());
  WorkloadDistribution type_dist =
      DistributionFor(&full_ctx, card_range, cfg.n);
  std::printf("%s", type_dist.ToString().c_str());

  // Ablation: entropy regularization (λ=0.01 vs 0) — distinct-query count
  // among generated queries measures diversity (§4.3).
  std::printf("\n[ablation] entropy regularization & diversity\n");
  for (double lambda : {0.0, 0.01}) {
    LearnedSqlGenOptions aopts = DefaultOptions(cfg, 10002);
    aopts.trainer.entropy_coef = lambda;
    auto gen = LearnedSqlGen::Create(&ctx.db, aopts);
    LSG_CHECK(gen.ok());
    LSG_CHECK_OK((*gen)->Train(card_range));
    auto rep = (*gen)->GenerateBatch(cfg.n);
    LSG_CHECK(rep.ok());
    std::set<std::string> distinct;
    for (const GeneratedQuery& q : rep->queries) distinct.insert(q.sql);
    std::printf("  lambda=%.2f: accuracy %.2f%%, distinct queries %zu/%d\n",
                lambda, 100 * rep->accuracy, distinct.size(), cfg.n);
  }
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
