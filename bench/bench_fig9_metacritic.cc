// Reproduces Figure 9: meta-critic generalization to new constraints on
// XueTang — Scratch (train from zero) vs AC-extend (constraint encoded into
// the state) vs MetaCritic (pre-trained shared critic):
// (a) accuracy on held-out constraints, (b) adaptation+generation time,
// (c) average-reward adaptation trace.
#include "bench/bench_common.h"
#include "rl/meta_critic.h"

namespace lsg {
namespace bench {
namespace {

/// Normalized constraint features for AC-extend.
std::vector<float> ConstraintFeatures(const Constraint& c,
                                      const MetricDomain& dom) {
  auto norm = [&](double v) {
    return static_cast<float>((v - dom.lo) / std::max(1.0, dom.hi - dom.lo));
  };
  return {norm(c.lo), norm(c.hi)};
}

struct MethodResult {
  double accuracy = 0;
  double seconds = 0;
  std::vector<double> trace;
};

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  // Adaptation needs fewer epochs than from-scratch training (that is the
  // point of the experiment); ~half the standard budget keeps the three
  // methods comparable while bounding the 4-constraint x 3-method sweep.
  const int adapt_epochs = std::max(10, cfg.epochs / 2);
  const int pretrain_epochs = std::max(10, cfg.epochs / 4);
  const int n_eval = std::max(10, cfg.n / 2);
  PrintHeader(StrFormat(
      "Figure 9: meta-critic generalization (XueTang, K=10 tasks, "
      "pretrain=%d, adapt=%d epochs, N=%d)",
      pretrain_epochs, adapt_epochs, n_eval));

  LearnedSqlGenOptions opts = DefaultOptions(cfg, 9001);
  DatasetContext ctx = MakeContext("XueTang", cfg, opts);
  MetricDomain dom = ctx.card_domain;

  // Pre-training tasks: the domain split into 10 contiguous ranges (§6).
  std::vector<Constraint> tasks =
      SplitIntoTasks(ConstraintMetric::kCardinality, dom, 10);
  // Held-out constraints: offset ranges straddling task boundaries
  // (the paper's [11.5K,12.5K] ... pattern).
  std::vector<Constraint> held_out;
  const double w = (dom.hi - dom.lo) / 10.0;
  for (int i : {0, 1, 2, 3}) {
    held_out.push_back(Constraint::Range(ConstraintMetric::kCardinality,
                                         dom.lo + (i + 0.5) * w,
                                         dom.lo + (i + 1.5) * w));
  }

  // One feedback cache shared across every rollout environment: the 10
  // pre-training tasks and the held-out adaptation envs all estimate over
  // the same immutable XueTang stats, so memoized estimates carry over.
  FeedbackCache feedback_cache;

  std::vector<std::unique_ptr<SqlGenEnvironment>> task_envs;
  std::vector<Environment*> task_env_ptrs;
  for (const Constraint& c : tasks) {
    task_envs.push_back(MakeEnv(&ctx, c, opts.profile, &feedback_cache));
    task_env_ptrs.push_back(task_envs.back().get());
  }

  TrainerOptions trainer_opts = opts.trainer;
  trainer_opts.seed = opts.seed;

  // --- MetaCritic: pre-train the shared critic across the 10 tasks.
  Stopwatch pretrain_watch;
  MetaCriticTrainer meta(task_env_ptrs, trainer_opts, MetaCritic::Options{});
  for (int e = 0; e < pretrain_epochs; ++e) {
    LSG_CHECK(meta.PretrainEpoch().ok());
  }
  double meta_pretrain_s = pretrain_watch.ElapsedSeconds();

  // --- AC-extend: one actor-critic with constraint features, pre-trained
  // round-robin over the same tasks.
  Stopwatch acx_watch;
  TrainerOptions acx_opts = trainer_opts;
  acx_opts.net.extra_input_dims = 2;
  ActorCriticTrainer acx(task_env_ptrs[0], acx_opts);
  for (int e = 0; e < pretrain_epochs; ++e) {
    for (size_t t = 0; t < tasks.size(); ++t) {
      acx.set_environment(task_env_ptrs[t]);
      acx.set_extra_features(ConstraintFeatures(tasks[t], dom));
      LSG_CHECK(acx.TrainEpoch().ok());
    }
  }
  double acx_pretrain_s = acx_watch.ElapsedSeconds();
  std::printf("pretraining: MetaCritic %.1fs, AC-extend %.1fs (amortized "
              "across new tasks)\n", meta_pretrain_s, acx_pretrain_s);

  auto eval_with = [&](Environment* env, auto&& generate_one) {
    int satisfied = 0;
    for (int i = 0; i < n_eval; ++i) {
      auto t = generate_one(env);
      LSG_CHECK(t.ok());
      if (t->satisfied) ++satisfied;
    }
    return static_cast<double>(satisfied) / n_eval;
  };

  std::printf("\n%-24s %10s %10s %10s  (accuracy %% after adaptation)\n",
              "new constraint", "Scratch", "AC-extend", "MetaCritic");
  std::vector<double> scratch_trace, acx_trace, meta_trace;
  double sc_acc = 0, ax_acc = 0, mc_acc = 0;
  double sc_time = 0, ax_time = 0, mc_time = 0;
  for (size_t hi = 0; hi < held_out.size(); ++hi) {
    const Constraint& c = held_out[hi];
    auto env = MakeEnv(&ctx, c, opts.profile, &feedback_cache);

    // Scratch.
    Stopwatch sw;
    ActorCriticTrainer scratch(env.get(), trainer_opts);
    MethodResult sc;
    for (int e = 0; e < adapt_epochs; ++e) {
      auto st = scratch.TrainEpoch();
      LSG_CHECK(st.ok());
      sc.trace.push_back(st->mean_total_reward);
    }
    sc.accuracy = eval_with(env.get(), [&](Environment*) {
      return scratch.Generate();
    });
    sc.seconds = sw.ElapsedSeconds();

    // AC-extend (continue from pre-trained weights).
    sw.Restart();
    acx.set_environment(env.get());
    acx.set_extra_features(ConstraintFeatures(c, dom));
    MethodResult ax;
    for (int e = 0; e < adapt_epochs; ++e) {
      auto st = acx.TrainEpoch();
      LSG_CHECK(st.ok());
      ax.trace.push_back(st->mean_total_reward);
    }
    ax.accuracy = eval_with(env.get(), [&](Environment*) {
      return acx.Generate();
    });
    ax.seconds = sw.ElapsedSeconds();

    // MetaCritic adaptation: fresh actor + shared pre-trained critic.
    sw.Restart();
    auto trace = meta.Adapt(env.get(), adapt_epochs);
    LSG_CHECK(trace.ok());
    MethodResult mc;
    for (const EpochStats& st : *trace) mc.trace.push_back(st.mean_total_reward);
    mc.accuracy = eval_with(env.get(), [&](Environment* e) {
      return meta.GenerateWithAdapted(e);
    });
    mc.seconds = sw.ElapsedSeconds();

    std::printf("%-24s %10.2f %10.2f %10.2f\n", c.ToString().c_str(),
                100 * sc.accuracy, 100 * ax.accuracy, 100 * mc.accuracy);
    std::fflush(stdout);
    sc_acc += sc.accuracy;
    ax_acc += ax.accuracy;
    mc_acc += mc.accuracy;
    sc_time += sc.seconds;
    ax_time += ax.seconds;
    mc_time += mc.seconds;
    if (hi == 0) {
      scratch_trace = sc.trace;
      acx_trace = ax.trace;
      meta_trace = mc.trace;
    }
  }
  const double k = static_cast<double>(held_out.size());
  std::printf("\n(b) mean adaptation+evaluation seconds per new task: "
              "Scratch %.2f, AC-extend %.2f, MetaCritic %.2f\n",
              sc_time / k, ax_time / k, mc_time / k);
  std::printf("(a) mean accuracy: Scratch %.2f%%, AC-extend %.2f%%, "
              "MetaCritic %.2f%% (paper: MetaCritic slightly highest)\n",
              100 * sc_acc / k, 100 * ax_acc / k, 100 * mc_acc / k);

  std::printf("\n(c) adaptation trace on %s (mean batch reward)\n",
              held_out[0].ToString().c_str());
  std::printf("%8s %10s %10s %10s\n", "epoch", "Scratch", "AC-extend",
              "MetaCritic");
  for (size_t e = 0; e < scratch_trace.size();
       e += std::max<size_t>(1, scratch_trace.size() / 15)) {
    std::printf("%8zu %10.3f %10.3f %10.3f\n", e, scratch_trace[e],
                acx_trace[e], meta_trace[e]);
  }
  auto tail_mean = [](const std::vector<double>& t) {
    size_t k2 = std::max<size_t>(1, t.size() / 5);
    double s = 0;
    for (size_t e = t.size() - k2; e < t.size(); ++e) s += t[e];
    return s / k2;
  };
  std::printf("shape check: late-adaptation reward Scratch %.3f, AC-extend "
              "%.3f, MetaCritic %.3f (paper: MetaCritic converges fastest)\n",
              tail_mean(scratch_trace), tail_mean(acx_trace),
              tail_mean(meta_trace));
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
