// Google-benchmark micro-benchmarks for the core components: FSM masking,
// random-walk episodes, executor operators, estimator, cost model, LSTM
// forward/backward, and vocabulary construction.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/workload.h"
#include "datasets/tpch_like.h"
#include "exec/executor.h"
#include "nn/lstm.h"
#include "optimizer/cost_model.h"
#include "rl/policy_network.h"

namespace lsg {
namespace {

struct MicroFixture {
  MicroFixture() : db(BuildTpchLike()) {
    stats = DatabaseStats::Collect(db);
    est = std::make_unique<CardinalityEstimator>(&db, &stats);
    cost = std::make_unique<CostModel>(est.get());
    VocabularyOptions vo;
    auto v = Vocabulary::Build(db, vo);
    LSG_CHECK(v.ok());
    vocab.emplace(std::move(v).value());
  }
  Database db;
  DatabaseStats stats;
  std::unique_ptr<CardinalityEstimator> est;
  std::unique_ptr<CostModel> cost;
  std::optional<Vocabulary> vocab;
};

MicroFixture& Fixture() {
  static MicroFixture* f = new MicroFixture();
  return *f;
}

void BM_FsmMaskComputation(benchmark::State& state) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  // Advance into a WHERE clause where masking is at its most complex.
  int lineitem = f.db.catalog().FindTable("lineitem");
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kFrom)));
  LSG_CHECK_OK(fsm.Step(f.vocab->table_token_id(lineitem)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kSelect)));
  LSG_CHECK_OK(fsm.Step(f.vocab->column_token_id(lineitem, 0)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kWhere)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm.ValidActions());
  }
}
BENCHMARK(BM_FsmMaskComputation);

void BM_RandomWalkEpisode(benchmark::State& state) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  Rng rng(1);
  for (auto _ : state) {
    auto q = RandomWalkQuery(&fsm, &rng);
    LSG_CHECK(q.ok());
    benchmark::DoNotOptimize(q->type);
  }
}
BENCHMARK(BM_RandomWalkEpisode);

void BM_ExecutorJoinFilter(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Executor exec(&f.db);
  SelectQuery q;
  q.tables = {f.db.catalog().FindTable("lineitem"),
              f.db.catalog().FindTable("orders")};
  int li = q.tables[0];
  q.items.push_back({AggFunc::kNone, {li, 0}});
  Predicate p;
  p.column = {li, 4};  // l_quantity
  p.op = CompareOp::kLt;
  p.value = Value(int64_t{25});
  q.where.predicates.push_back(std::move(p));
  for (auto _ : state) {
    auto r = exec.ExecuteSelect(q, false);
    LSG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->cardinality);
  }
}
BENCHMARK(BM_ExecutorJoinFilter);

void BM_ExecutorGroupBy(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Executor exec(&f.db);
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li};
  q.items.push_back({AggFunc::kNone, {li, 7}});  // l_returnflag
  q.group_by.push_back({li, 7});
  q.having = HavingClause{AggFunc::kSum, {li, 4}, CompareOp::kGt,
                          Value(int64_t{100})};
  for (auto _ : state) {
    auto r = exec.ExecuteSelect(q, false);
    LSG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->cardinality);
  }
}
BENCHMARK(BM_ExecutorGroupBy);

void BM_CardinalityEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li, f.db.catalog().FindTable("orders")};
  q.items.push_back({AggFunc::kNone, {li, 0}});
  Predicate p;
  p.column = {li, 4};
  p.op = CompareOp::kLt;
  p.value = Value(int64_t{25});
  q.where.predicates.push_back(std::move(p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.est->EstimateSelect(q, nullptr));
  }
}
BENCHMARK(BM_CardinalityEstimate);

void BM_CostEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li};
  q.items.push_back({AggFunc::kMax, {li, 5}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cost->SelectCost(q));
  }
}
BENCHMARK(BM_CostEstimate);

void BM_LstmStepOneHot(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Rng rng(3);
  LstmStack lstm(f.vocab->size() + 1, 30, 2, 0.f, &rng);
  LstmStack::State st = lstm.InitialState();
  int token = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lstm.Step(token % f.vocab->size(), &st, nullptr, false, &rng));
    ++token;
  }
}
BENCHMARK(BM_LstmStepOneHot);

void BM_PolicyEpisodeWithBackward(benchmark::State& state) {
  MicroFixture& f = Fixture();
  NetworkOptions no;
  PolicyNetwork net(f.vocab->size(), no);
  Rng rng(5);
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  for (auto _ : state) {
    fsm.Reset();
    auto ep = net.BeginEpisode(true);
    std::vector<double> adv;
    while (!fsm.done()) {
      const auto& probs = net.NextDistribution(&ep, fsm.ValidActions());
      int a = net.SampleAction(probs, &rng);
      net.RecordAction(&ep, a);
      LSG_CHECK_OK(fsm.Step(a));
      adv.push_back(0.1);
    }
    (void)fsm.TakeAst();
    net.AccumulateGradients(ep, adv, 0.01);
    benchmark::DoNotOptimize(ep.actions.size());
  }
}
BENCHMARK(BM_PolicyEpisodeWithBackward);

void BM_VocabularyBuild(benchmark::State& state) {
  MicroFixture& f = Fixture();
  VocabularyOptions vo;
  for (auto _ : state) {
    auto v = Vocabulary::Build(f.db, vo);
    LSG_CHECK(v.ok());
    benchmark::DoNotOptimize(v->size());
  }
}
BENCHMARK(BM_VocabularyBuild);

void BM_StatsCollect(benchmark::State& state) {
  MicroFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DatabaseStats::Collect(f.db));
  }
}
BENCHMARK(BM_StatsCollect);

}  // namespace
}  // namespace lsg

// BENCHMARK_MAIN plus the repo-wide `--json OUT` convention: the flag is
// translated into google-benchmark's --benchmark_out=OUT (json format), so
// every bench binary shares one way to ask for machine-readable results.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      storage.push_back("--benchmark_out_format=json");
      ++i;
    } else {
      storage.push_back(argv[i]);
    }
  }
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int pargc = static_cast<int>(args.size());
  benchmark::Initialize(&pargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
