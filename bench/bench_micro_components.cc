// Google-benchmark micro-benchmarks for the core components: FSM masking,
// random-walk episodes, executor operators, estimator, cost model, LSTM
// forward/backward, and vocabulary construction.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/environment.h"
#include "core/workload.h"
#include "datasets/tpch_like.h"
#include "exec/executor.h"
#include "fsm/compiled_fsm.h"
#include "fuzz/trace.h"
#include "nn/lstm.h"
#include "optimizer/cost_model.h"
#include "optimizer/feedback_cache.h"
#include "rl/policy_network.h"

namespace lsg {
namespace {

struct MicroFixture {
  MicroFixture() : db(BuildTpchLike()) {
    stats = DatabaseStats::Collect(db);
    est = std::make_unique<CardinalityEstimator>(&db, &stats);
    cost = std::make_unique<CostModel>(est.get());
    VocabularyOptions vo;
    auto v = Vocabulary::Build(db, vo);
    LSG_CHECK(v.ok());
    vocab.emplace(std::move(v).value());
  }
  Database db;
  DatabaseStats stats;
  std::unique_ptr<CardinalityEstimator> est;
  std::unique_ptr<CostModel> cost;
  std::optional<Vocabulary> vocab;
};

MicroFixture& Fixture() {
  static MicroFixture* f = new MicroFixture();
  return *f;
}

void BM_FsmMaskComputation(benchmark::State& state) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  // Advance into a WHERE clause where masking is at its most complex.
  int lineitem = f.db.catalog().FindTable("lineitem");
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kFrom)));
  LSG_CHECK_OK(fsm.Step(f.vocab->table_token_id(lineitem)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kSelect)));
  LSG_CHECK_OK(fsm.Step(f.vocab->column_token_id(lineitem, 0)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kWhere)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm.ValidActions());
  }
}
BENCHMARK(BM_FsmMaskComputation);

// --- compiled FSM: table lookups vs. grammar re-derivation --------------
//
// Same mask-heavy WHERE position as BM_FsmMaskComputation, but under the
// SPJ profile (the one whose structural graph compiles on every bundled
// dataset) so the interpreted and compiled variants answer the identical
// question and the ratio is the table's speedup.

const CompiledFsmTable& SpjTable() {
  static const CompiledFsmTable* table = [] {
    MicroFixture& f = Fixture();
    auto compiled =
        CompileFsm(f.db, *f.vocab, QueryProfile::SpjOnly(),
                   CompileFsmOptions());
    LSG_CHECK(compiled.ok());
    return new CompiledFsmTable(std::move(compiled).value());
  }();
  return *table;
}

void FsmMaskBench(benchmark::State& state, bool compiled) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile::SpjOnly());
  if (compiled) fsm.AttachCompiledTable(&SpjTable());
  int lineitem = f.db.catalog().FindTable("lineitem");
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kFrom)));
  LSG_CHECK_OK(fsm.Step(f.vocab->table_token_id(lineitem)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kSelect)));
  LSG_CHECK_OK(fsm.Step(f.vocab->column_token_id(lineitem, 0)));
  LSG_CHECK_OK(fsm.Step(f.vocab->keyword_id(Keyword::kWhere)));
  LSG_CHECK(!compiled || fsm.compiled_active());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm.ValidActions());
  }
}

void BM_FsmMaskInterpreted(benchmark::State& state) {
  FsmMaskBench(state, /*compiled=*/false);
}
BENCHMARK(BM_FsmMaskInterpreted);

void BM_FsmMaskCompiled(benchmark::State& state) {
  FsmMaskBench(state, /*compiled=*/true);
}
BENCHMARK(BM_FsmMaskCompiled);

// Whole mask-driven episodes (ValidActions + Step every token): the
// end-to-end win a ValidActions-heavy caller — policy episodes, random
// walks — sees from the table.
void FsmWalkBench(benchmark::State& state, bool compiled) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile::SpjOnly());
  if (compiled) fsm.AttachCompiledTable(&SpjTable());
  Rng rng(1);
  for (auto _ : state) {
    auto q = RandomWalkQuery(&fsm, &rng);
    LSG_CHECK(q.ok());
    benchmark::DoNotOptimize(q->type);
  }
}

void BM_FsmWalkEpisodeInterpreted(benchmark::State& state) {
  FsmWalkBench(state, /*compiled=*/false);
}
BENCHMARK(BM_FsmWalkEpisodeInterpreted);

void BM_FsmWalkEpisodeCompiled(benchmark::State& state) {
  FsmWalkBench(state, /*compiled=*/true);
}
BENCHMARK(BM_FsmWalkEpisodeCompiled);

void BM_RandomWalkEpisode(benchmark::State& state) {
  MicroFixture& f = Fixture();
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  Rng rng(1);
  for (auto _ : state) {
    auto q = RandomWalkQuery(&fsm, &rng);
    LSG_CHECK(q.ok());
    benchmark::DoNotOptimize(q->type);
  }
}
BENCHMARK(BM_RandomWalkEpisode);

void BM_ExecutorJoinFilter(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Executor exec(&f.db);
  SelectQuery q;
  q.tables = {f.db.catalog().FindTable("lineitem"),
              f.db.catalog().FindTable("orders")};
  int li = q.tables[0];
  q.items.push_back({AggFunc::kNone, {li, 0}});
  Predicate p;
  p.column = {li, 4};  // l_quantity
  p.op = CompareOp::kLt;
  p.value = Value(int64_t{25});
  q.where.predicates.push_back(std::move(p));
  for (auto _ : state) {
    auto r = exec.ExecuteSelect(q, false);
    LSG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->cardinality);
  }
}
BENCHMARK(BM_ExecutorJoinFilter);

void BM_ExecutorGroupBy(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Executor exec(&f.db);
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li};
  q.items.push_back({AggFunc::kNone, {li, 7}});  // l_returnflag
  q.group_by.push_back({li, 7});
  q.having = HavingClause{AggFunc::kSum, {li, 4}, CompareOp::kGt,
                          Value(int64_t{100})};
  for (auto _ : state) {
    auto r = exec.ExecuteSelect(q, false);
    LSG_CHECK(r.ok());
    benchmark::DoNotOptimize(r->cardinality);
  }
}
BENCHMARK(BM_ExecutorGroupBy);

void BM_CardinalityEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li, f.db.catalog().FindTable("orders")};
  q.items.push_back({AggFunc::kNone, {li, 0}});
  Predicate p;
  p.column = {li, 4};
  p.op = CompareOp::kLt;
  p.value = Value(int64_t{25});
  q.where.predicates.push_back(std::move(p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.est->EstimateSelect(q, nullptr));
  }
}
BENCHMARK(BM_CardinalityEstimate);

void BM_CostEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  SelectQuery q;
  int li = f.db.catalog().FindTable("lineitem");
  q.tables = {li};
  q.items.push_back({AggFunc::kMax, {li, 5}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cost->SelectCost(q));
  }
}
BENCHMARK(BM_CostEstimate);

// --- feedback plumbing: cache + incremental prefix estimates ------------
//
// The three BM_EnvEpisode* variants replay the same recorded episodes
// (a repeated-constraint workload: identical queries recur across
// iterations) through a SqlGenEnvironment, isolating how the per-step
// feedback is computed:
//   FullEstimates        every step re-walks the whole AST
//   CachedEstimates      AST-fingerprint cache in front of the full walk
//   IncrementalEstimates O(1) running prefix state (the default)

const std::vector<std::vector<int>>& RecordedEpisodes() {
  static const std::vector<std::vector<int>>* kEpisodes = [] {
    MicroFixture& f = Fixture();
    auto* eps = new std::vector<std::vector<int>>;
    // Full profile: joins, subqueries and wide WHERE clauses, where the
    // full re-walk is at its most expensive.
    GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile::Full());
    for (int i = 0; i < 32; ++i) {
      Rng rng(1000 + i);
      std::vector<int> actions;
      fsm.Reset();
      LSG_CHECK(RecordedRandomWalk(&fsm, &rng, &actions).ok());
      eps->push_back(std::move(actions));
    }
    return eps;
  }();
  return *kEpisodes;
}

void EnvEpisodeBench(benchmark::State& state, bool incremental, bool cached) {
  MicroFixture& f = Fixture();
  const auto& episodes = RecordedEpisodes();
  FeedbackCache cache;
  EnvironmentOptions eo;
  eo.profile = QueryProfile::Full();  // matches RecordedEpisodes()
  eo.incremental_prefix_estimates = incremental;
  eo.feedback_cache = cached ? &cache : nullptr;
  SqlGenEnvironment env(&f.db, &*f.vocab, f.est.get(), f.cost.get(),
                        Constraint::Range(ConstraintMetric::kCardinality, 5,
                                          1000000),
                        eo);
  size_t i = 0;
  uint64_t steps = 0;
  for (auto _ : state) {
    const std::vector<int>& actions = episodes[i++ % episodes.size()];
    env.Reset();
    for (int a : actions) {
      auto r = env.Step(a);
      LSG_CHECK(r.ok());
      benchmark::DoNotOptimize(r->metric);
      ++steps;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}

void BM_EnvEpisodeFullEstimates(benchmark::State& state) {
  EnvEpisodeBench(state, /*incremental=*/false, /*cached=*/false);
}
BENCHMARK(BM_EnvEpisodeFullEstimates);

void BM_EnvEpisodeCachedEstimates(benchmark::State& state) {
  EnvEpisodeBench(state, /*incremental=*/false, /*cached=*/true);
}
BENCHMARK(BM_EnvEpisodeCachedEstimates);

void BM_EnvEpisodeIncrementalEstimates(benchmark::State& state) {
  EnvEpisodeBench(state, /*incremental=*/true, /*cached=*/false);
}
BENCHMARK(BM_EnvEpisodeIncrementalEstimates);

// The feedback computation alone (no FSM / policy overhead) on the same
// repeated workload: what MetricOf costs without and with the cache.

const std::vector<QueryAst>& RecordedAsts() {
  static const std::vector<QueryAst>* kAsts = [] {
    MicroFixture& f = Fixture();
    auto* asts = new std::vector<QueryAst>;
    GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile::Full());
    for (const std::vector<int>& actions : RecordedEpisodes()) {
      fsm.Reset();
      auto ast = ReplayActions(&fsm, actions, nullptr);
      LSG_CHECK(ast.ok());
      asts->push_back(std::move(ast).value());
    }
    return asts;
  }();
  return *kAsts;
}

void BM_FeedbackRepeatedFull(benchmark::State& state) {
  MicroFixture& f = Fixture();
  const auto& asts = RecordedAsts();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.est->EstimateCardinality(asts[i++ % asts.size()]));
  }
}
BENCHMARK(BM_FeedbackRepeatedFull);

void BM_FeedbackRepeatedCached(benchmark::State& state) {
  MicroFixture& f = Fixture();
  const auto& asts = RecordedAsts();
  FeedbackCache cache;
  size_t i = 0;
  for (auto _ : state) {
    const QueryAst& ast = asts[i++ % asts.size()];
    uint64_t key = cache.Key(ast, FeedbackKind::kCardinality);
    std::optional<double> hit = cache.Lookup(key);
    if (!hit.has_value()) {
      hit = f.est->EstimateCardinality(ast);
      cache.Insert(key, *hit);
    }
    benchmark::DoNotOptimize(*hit);
  }
}
BENCHMARK(BM_FeedbackRepeatedCached);

// Raw cache path: fingerprint + lookup of a warm entry. Compare against
// BM_CardinalityEstimate (the full walk a hit avoids).
void BM_FeedbackCacheHit(benchmark::State& state) {
  MicroFixture& f = Fixture();
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  int li = f.db.catalog().FindTable("lineitem");
  ast.select->tables = {li, f.db.catalog().FindTable("orders")};
  ast.select->items.push_back({AggFunc::kNone, {li, 0}});
  Predicate p;
  p.column = {li, 4};
  p.op = CompareOp::kLt;
  p.value = Value(int64_t{25});
  ast.select->where.predicates.push_back(std::move(p));

  FeedbackCache cache;
  cache.Insert(cache.Key(ast, FeedbackKind::kCardinality),
               f.est->EstimateCardinality(ast));
  for (auto _ : state) {
    uint64_t key = cache.Key(ast, FeedbackKind::kCardinality);
    auto hit = cache.Lookup(key);
    LSG_CHECK(hit.has_value());
    benchmark::DoNotOptimize(*hit);
  }
}
BENCHMARK(BM_FeedbackCacheHit);

void BM_LstmStepOneHot(benchmark::State& state) {
  MicroFixture& f = Fixture();
  Rng rng(3);
  LstmStack lstm(f.vocab->size() + 1, 30, 2, 0.f, &rng);
  LstmStack::State st = lstm.InitialState();
  int token = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lstm.Step(token % f.vocab->size(), &st, nullptr, false, &rng));
    ++token;
  }
}
BENCHMARK(BM_LstmStepOneHot);

void BM_PolicyEpisodeWithBackward(benchmark::State& state) {
  MicroFixture& f = Fixture();
  NetworkOptions no;
  PolicyNetwork net(f.vocab->size(), no);
  Rng rng(5);
  GenerationFsm fsm(&f.db, &*f.vocab, QueryProfile());
  for (auto _ : state) {
    fsm.Reset();
    auto ep = net.BeginEpisode(true);
    std::vector<double> adv;
    while (!fsm.done()) {
      const auto& probs = net.NextDistribution(&ep, fsm.ValidActions());
      int a = net.SampleAction(probs, &rng);
      net.RecordAction(&ep, a);
      LSG_CHECK_OK(fsm.Step(a));
      adv.push_back(0.1);
    }
    (void)fsm.TakeAst();
    net.AccumulateGradients(ep, adv, 0.01);
    benchmark::DoNotOptimize(ep.actions.size());
  }
}
BENCHMARK(BM_PolicyEpisodeWithBackward);

void BM_VocabularyBuild(benchmark::State& state) {
  MicroFixture& f = Fixture();
  VocabularyOptions vo;
  for (auto _ : state) {
    auto v = Vocabulary::Build(f.db, vo);
    LSG_CHECK(v.ok());
    benchmark::DoNotOptimize(v->size());
  }
}
BENCHMARK(BM_VocabularyBuild);

void BM_StatsCollect(benchmark::State& state) {
  MicroFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DatabaseStats::Collect(f.db));
  }
}
BENCHMARK(BM_StatsCollect);

}  // namespace
}  // namespace lsg

// BENCHMARK_MAIN plus the repo-wide `--json OUT` convention: the flag is
// translated into google-benchmark's --benchmark_out=OUT (json format), so
// every bench binary shares one way to ask for machine-readable results.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      storage.push_back("--benchmark_out_format=json");
      ++i;
    } else {
      storage.push_back(argv[i]);
    }
  }
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int pargc = static_cast<int>(args.size());
  benchmark::Initialize(&pargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
