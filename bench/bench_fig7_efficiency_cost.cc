// Reproduces Figure 7: time to generate N satisfying queries under cost
// constraints (training + inference for LearnedSQLGen).
#include "bench/figure_accuracy.h"

int main() {
  lsg::bench::RunEfficiencyFigure(lsg::ConstraintMetric::kCost, "Figure 7");
  return 0;
}
