// Reproduces Figure 5: accuracy of SQLSmith / Template / LearnedSQLGen for
// point and range cost constraints on TPC-H / JOB / XueTang.
#include "bench/figure_accuracy.h"

int main() {
  lsg::bench::RunAccuracyFigure(lsg::ConstraintMetric::kCost, "Figure 5");
  return 0;
}
