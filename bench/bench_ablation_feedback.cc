// Ablation (DESIGN.md §5.3): estimator feedback (the paper's choice) vs
// true-execution feedback. The paper uses estimates "for the efficiency
// issue"; this bench quantifies that trade-off — true execution gives the
// exact metric but costs far more per episode.
#include "bench/bench_common.h"

namespace lsg {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("Ablation: estimator vs true-execution feedback "
                        "(TPC-H, N=%d, epochs=%d)", cfg.n, cfg.epochs));
  Database db = BuildDataset("TPC-H", cfg.scale);

  std::printf("%-14s %12s %14s %14s\n", "feedback", "accuracy%",
              "train time(s)", "gen time(s)");
  for (FeedbackSource fb :
       {FeedbackSource::kEstimator, FeedbackSource::kTrueExecution}) {
    LearnedSqlGenOptions opts = DefaultOptions(cfg, 13001);
    opts.feedback = fb;
    auto gen = LearnedSqlGen::Create(&db, opts);
    LSG_CHECK(gen.ok());

    EnvironmentOptions eo;
    eo.profile = opts.profile;
    SqlGenEnvironment probe(&db, &(*gen)->vocab(), &(*gen)->estimator(),
                            &(*gen)->cost_model(),
                            Constraint::Point(ConstraintMetric::kCardinality, 1),
                            eo);
    Rng rng(7);
    MetricDomain dom = ProbeMetricDomain(&probe, 200, &rng, 0.2, 0.95);
    Constraint c = PaperRangeGrid(ConstraintMetric::kCardinality, dom)[1];

    LSG_CHECK_OK((*gen)->Train(c));
    auto rep = (*gen)->GenerateBatch(cfg.n);
    LSG_CHECK(rep.ok());
    std::printf("%-14s %12.2f %14.2f %14.2f\n",
                fb == FeedbackSource::kEstimator ? "estimator" : "true-exec",
                100 * rep->accuracy, (*gen)->last_train_seconds(),
                rep->generate_seconds);
    std::fflush(stdout);
  }
  std::printf("note: the paper picks estimator feedback for efficiency at "
              "33GB scale; at laptop scale true execution is affordable and "
              "can even win on accuracy (it removes estimator bias from the "
              "reward). Compare the train-time column for the paper's "
              "rationale.\n");

  // Second ablation: dense partial-query rewards vs sparse end-only reward
  // (§4.2 Remark).
  std::printf("\nAblation: dense partial rewards vs sparse end-only reward\n");
  std::printf("%-14s %12s %16s\n", "rewards", "accuracy%", "late reward");
  for (bool dense : {true, false}) {
    LearnedSqlGenOptions opts = DefaultOptions(cfg, 13002);
    opts.dense_partial_rewards = dense;
    auto gen = LearnedSqlGen::Create(&db, opts);
    LSG_CHECK(gen.ok());
    EnvironmentOptions eo;
    eo.profile = opts.profile;
    SqlGenEnvironment probe(&db, &(*gen)->vocab(), &(*gen)->estimator(),
                            &(*gen)->cost_model(),
                            Constraint::Point(ConstraintMetric::kCardinality, 1),
                            eo);
    Rng rng(9);
    MetricDomain dom = ProbeMetricDomain(&probe, 200, &rng, 0.2, 0.95);
    Constraint c = PaperRangeGrid(ConstraintMetric::kCardinality, dom)[1];
    LSG_CHECK_OK((*gen)->Train(c));
    auto rep = (*gen)->GenerateBatch(cfg.n);
    LSG_CHECK(rep.ok());
    const auto& trace = (*gen)->trace();
    double late = 0;
    size_t tail = std::max<size_t>(1, trace.size() / 5);
    for (size_t e = trace.size() - tail; e < trace.size(); ++e) {
      late += trace[e].mean_final_reward;
    }
    std::printf("%-14s %12.2f %16.3f\n", dense ? "dense" : "sparse",
                100 * rep->accuracy, late / tail);
    std::fflush(stdout);
  }
  std::printf("note: with episodes capped at ~64 tokens and batch-normalized "
              "advantages, the sparse variant can match or beat dense "
              "shaping; the paper's dense-reward argument (§4.2) targets "
              "longer unnormalized episodes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
