// Reproduces Figure 12: accuracy and generation time as a function of the
// value-sampling ratio η (fraction of each column's distinct values that
// enter the action space) on TPC-H.
#include "bench/bench_common.h"

namespace lsg {
namespace bench {
namespace {

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("Figure 12: value-sample-ratio sweep (TPC-H, N=%d, "
                        "epochs=%d)", cfg.n, cfg.epochs));
  const std::vector<double> ratios = {0.02, 0.05, 0.1, 0.25, 0.5, 1.0};

  Database db = BuildDataset("TPC-H", cfg.scale);
  std::printf("%8s %10s %12s %12s %12s %12s\n", "eta", "|A|", "acc point%",
              "acc range%", "time point", "time range");

  for (double eta : ratios) {
    LearnedSqlGenOptions opts = DefaultOptions(cfg, 12001);
    opts.vocab.sample_ratio = eta;
    auto gen = LearnedSqlGen::Create(&db, opts);
    LSG_CHECK(gen.ok());

    // Probe the domain once per vocabulary (it shifts slightly with η).
    EnvironmentOptions eo;
    eo.profile = opts.profile;
    SqlGenEnvironment probe(&db, &(*gen)->vocab(), &(*gen)->estimator(),
                            &(*gen)->cost_model(),
                            Constraint::Point(ConstraintMetric::kCardinality, 1),
                            eo);
    Rng rng(7);
    MetricDomain dom = ProbeMetricDomain(&probe, 300, &rng, 0.2, 0.95);

    Constraint point = Constraint::Point(
        ConstraintMetric::kCardinality, GeometricGrid(dom.lo, dom.hi, 3)[1]);
    Constraint range = PaperRangeGrid(ConstraintMetric::kCardinality, dom)[1];

    double acc[2], secs[2];
    const Constraint cs[2] = {point, range};
    for (int i = 0; i < 2; ++i) {
      Stopwatch watch;
      LSG_CHECK_OK((*gen)->Train(cs[i]));
      auto rep = (*gen)->GenerateBatch(cfg.n);
      LSG_CHECK(rep.ok());
      acc[i] = 100 * rep->accuracy;
      secs[i] = watch.ElapsedSeconds();
    }
    std::printf("%8.2f %10d %12.2f %12.2f %11.2fs %11.2fs\n", eta,
                (*gen)->vocab().size(), acc[0], acc[1], secs[0], secs[1]);
    std::fflush(stdout);
  }
  std::printf("shape check (paper): accuracy rises then plateaus with eta; "
              "time dips (faster inference) then rises (slower training)\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
