// Reproduces Figure 11: time to generate growing numbers of complicated
// queries (nested / insert / delete) satisfying cost constraints on TPC-H.
// The FSM profile is switched per query type, demonstrating the paper's
// claim that the extendable FSM makes LearnedSQLGen applicable to varied
// complicated SQL.
#include "bench/bench_common.h"

namespace lsg {
namespace bench {
namespace {

struct TypeCase {
  const char* name;
  QueryProfile profile;
  QueryType type;
  bool require_nested;
};

void Run() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(StrFormat("Figure 11: complicated-query generation time "
                        "(TPC-H, epochs=%d)", cfg.epochs));
  LearnedSqlGenOptions base = DefaultOptions(cfg, 11001);
  DatasetContext ctx = MakeContext("TPC-H", cfg, base);

  QueryProfile nested_profile;
  nested_profile.max_nesting_depth = 2;
  nested_profile.require_nested = true;
  QueryProfile insert_profile = QueryProfile::InsertOnly();
  QueryProfile delete_profile = QueryProfile::DeleteOnly();
  const TypeCase cases[] = {
      {"NESTED", nested_profile, QueryType::kSelect, true},
      {"INSERT", insert_profile, QueryType::kInsert, false},
      {"DELETE", delete_profile, QueryType::kDelete, false},
  };

  const std::vector<int> counts = {10, 40, 70, 100};

  for (const TypeCase& tc : cases) {
    LearnedSqlGenOptions opts = base;
    opts.profile = tc.profile;
    // Re-probe the cost domain under this profile (DML costs differ).
    DatasetContext tctx = MakeContext("TPC-H", cfg, opts);
    std::vector<Constraint> constraints = {
        Constraint::Point(ConstraintMetric::kCost,
                          GeometricGrid(tctx.cost_domain.lo,
                                        tctx.cost_domain.hi, 3)[1]),
        PaperRangeGrid(ConstraintMetric::kCost, tctx.cost_domain)[1],
    };
    for (const Constraint& c : constraints) {
      LSG_CHECK_OK(tctx.gen->Train(c));
      std::printf("%-7s %-22s:", tc.name, c.ToString().c_str());
      Stopwatch watch;
      int have = 0;
      int64_t attempts = 0;
      const int64_t max_attempts = 40000;
      size_t next = 0;
      while (next < counts.size() && attempts < max_attempts) {
        // Generate one query; count it if it is a satisfied query of the
        // requested complicated type.
        auto rep = tctx.gen->GenerateBatch(1);
        LSG_CHECK(rep.ok());
        ++attempts;
        const GeneratedQuery& q = rep->queries[0];
        bool type_ok = q.features.type == tc.type &&
                       (!tc.require_nested || q.features.nested);
        if (q.satisfied && type_ok) ++have;
        while (next < counts.size() && have >= counts[next]) {
          std::printf("  %d:%6.2fs", counts[next],
                      tctx.gen->last_train_seconds() + watch.ElapsedSeconds());
          ++next;
        }
      }
      while (next < counts.size()) {
        std::printf("  %d:   n/a", counts[next]);
        ++next;
      }
      std::printf("   (attempts %lld)\n", static_cast<long long>(attempts));
      std::fflush(stdout);
    }
  }
  std::printf("shape check: per-type time grows roughly linearly with the "
              "requested count (paper Figure 11)\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsg

int main() {
  lsg::bench::Run();
  return 0;
}
