// Slow-SQL diagnosis workload (the paper's first motivating use case):
// generate queries whose optimizer cost lands in the expensive tail so a
// DBA (or an optimizer test harness) can study how the system handles
// heavy queries — without needing access to real customer workloads.
//
// Build & run:  ./build/examples/slow_query_diagnosis

#include <algorithm>
#include <cstdio>

#include "core/generator.h"
#include "core/workload.h"
#include "datasets/job_like.h"

int main() {
  using namespace lsg;

  Database db = BuildJobLike();
  std::printf("IMDB-shaped database: %zu tables, %zu rows\n", db.num_tables(),
              db.TotalRows());

  LearnedSqlGenOptions options;
  options.train_epochs = 150;
  options.profile.max_joins = 4;          // slow queries love joins
  options.profile.max_nesting_depth = 2;  // and subqueries
  auto gen = LearnedSqlGen::Create(&db, options);
  if (!gen.ok()) {
    std::printf("create failed: %s\n", gen.status().ToString().c_str());
    return 1;
  }

  // Probe what "expensive" means on this database, then target the top of
  // the reachable cost range.
  EnvironmentOptions eo;
  eo.profile = options.profile;
  SqlGenEnvironment probe(&db, &(*gen)->vocab(), &(*gen)->estimator(),
                          &(*gen)->cost_model(),
                          Constraint::Point(ConstraintMetric::kCost, 1), eo);
  Rng rng(1);
  MetricDomain dom = ProbeMetricDomain(&probe, 400, &rng, 0.5, 0.98);
  Constraint slow = Constraint::Range(ConstraintMetric::kCost, dom.hi * 0.5,
                                      dom.hi * 10.0);
  std::printf("targeting the expensive tail: %s\n", slow.ToString().c_str());

  if (Status st = (*gen)->Train(slow); !st.ok()) {
    std::printf("train failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto report = (*gen)->GenerateSatisfied(15);
  if (!report.ok()) {
    std::printf("generate failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // Rank by estimated cost and summarize the structural features the DBA
  // would care about.
  std::sort(report->queries.begin(), report->queries.end(),
            [](const GeneratedQuery& a, const GeneratedQuery& b) {
              return a.metric > b.metric;
            });
  WorkloadDistribution dist;
  std::printf("\ntop slow-query candidates (cost desc):\n");
  for (const GeneratedQuery& q : report->queries) {
    dist.Add(q.features);
    std::printf("  cost=%-10.0f joins=%d nested=%d  %.110s%s\n", q.metric,
                q.features.num_tables - 1, q.features.nested ? 1 : 0,
                q.sql.c_str(), q.sql.size() > 110 ? "..." : "");
  }
  std::printf("\nworkload profile:\n%s", dist.ToString().c_str());
  return 0;
}
