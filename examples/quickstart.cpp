// Quickstart: generate SQL queries whose cardinality falls in a target
// range, end to end.
//
//   1. Build (or load) a database.
//   2. Create the LearnedSqlGen pipeline (action space, statistics,
//      estimator, cost model).
//   3. Train the RL model for your constraint.
//   4. Generate as many satisfying queries as you need.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/generator.h"
#include "datasets/tpch_like.h"

int main() {
  using namespace lsg;

  // 1. A TPC-H-shaped synthetic database (swap in your own lsg::Database).
  Database db = BuildTpchLike();
  std::printf("database: %zu tables, %zu rows\n", db.num_tables(),
              db.TotalRows());

  // 2. The pipeline. Options default to the paper's hyper-parameters
  //    (2-layer LSTM x 30 units, dropout 0.3, entropy 0.01, k=100 values).
  LearnedSqlGenOptions options;
  options.train_epochs = 150;
  auto gen = LearnedSqlGen::Create(&db, options);
  if (!gen.ok()) {
    std::printf("create failed: %s\n", gen.status().ToString().c_str());
    return 1;
  }
  std::printf("action space |A| = %d tokens\n", (*gen)->vocab().size());

  // 3. Train for the constraint "cardinality in [50, 100]".
  Constraint constraint =
      Constraint::Range(ConstraintMetric::kCardinality, 50, 100);
  std::printf("training for %s ...\n", constraint.ToString().c_str());
  if (Status st = (*gen)->Train(constraint); !st.ok()) {
    std::printf("train failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained in %.2fs; final epoch satisfied %.0f%% of its batch\n",
              (*gen)->last_train_seconds(),
              100 * (*gen)->trace().back().satisfied_frac);

  // 4. Ask for 10 satisfying queries.
  auto report = (*gen)->GenerateSatisfied(10);
  if (!report.ok()) {
    std::printf("generate failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %d satisfying queries in %d attempts (%.2fs):\n",
              report->satisfied, report->attempts, report->generate_seconds);
  for (const GeneratedQuery& q : report->queries) {
    std::printf("  [card~%-6.0f] %s\n", q.metric, q.sql.c_str());
  }
  return 0;
}
