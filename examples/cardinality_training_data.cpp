// Training-data factory for a learned cardinality estimator (the paper's
// fourth motivating use case [20, 34]): produce a labeled workload of
// (SQL, true cardinality) pairs with a *controlled label distribution* —
// the very thing random generators cannot do, because their cardinalities
// collapse onto a few magnitudes.
//
// The program trains one model per cardinality bucket, generates a
// balanced sample from each, labels every query with its TRUE cardinality
// (executed against the database, not estimated), and emits CSV on stdout.
//
// Build & run:  ./build/examples/cardinality_training_data > workload.csv

#include <cstdio>

#include "core/generator.h"
#include "core/workload.h"
#include "datasets/xuetang_like.h"
#include "exec/executor.h"

int main() {
  using namespace lsg;

  Database db = BuildXuetangLike();
  std::fprintf(stderr, "XueTang-shaped database: %zu tables, %zu rows\n",
               db.num_tables(), db.TotalRows());

  LearnedSqlGenOptions options;
  options.train_epochs = 120;
  auto gen = LearnedSqlGen::Create(&db, options);
  if (!gen.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }

  // Probe the reachable cardinality range and split it into buckets — each
  // becomes a constraint so the emitted labels cover all magnitudes.
  EnvironmentOptions eo;
  eo.profile = options.profile;
  SqlGenEnvironment probe(&db, &(*gen)->vocab(), &(*gen)->estimator(),
                          &(*gen)->cost_model(),
                          Constraint::Point(ConstraintMetric::kCardinality, 1),
                          eo);
  Rng rng(3);
  MetricDomain dom = ProbeMetricDomain(&probe, 400, &rng, 0.1, 0.95);
  std::fprintf(stderr, "cardinality domain [%.0f, %.0f]\n", dom.lo, dom.hi);

  const int kPerBucket = 12;
  Executor executor(&db);
  std::printf("bucket_lo,bucket_hi,estimated_card,true_card,sql\n");
  int emitted = 0;
  auto grid = GeometricGrid(std::max(1.0, dom.lo), dom.hi, 5);
  for (size_t b = 0; b + 1 < grid.size(); ++b) {
    Constraint c =
        Constraint::Range(ConstraintMetric::kCardinality, grid[b], grid[b + 1]);
    std::fprintf(stderr, "bucket %zu: %s ... ", b, c.ToString().c_str());
    if (Status st = (*gen)->Train(c); !st.ok()) {
      std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto report = (*gen)->GenerateSatisfied(kPerBucket);
    if (!report.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%d queries (%.1fs train, %.1fs gen)\n",
                 report->satisfied, report->train_seconds,
                 report->generate_seconds);
    for (const GeneratedQuery& q : report->queries) {
      // Ground-truth label: execute the generated AST.
      auto truth = executor.Cardinality(q.ast);
      if (!truth.ok()) continue;  // e.g. join-blowup guard; skip the pair
      std::string escaped;
      for (char ch : q.sql) escaped += (ch == '"') ? '\'' : ch;
      std::printf("%.0f,%.0f,%.1f,%llu,\"%s\"\n", grid[b], grid[b + 1],
                  q.metric, static_cast<unsigned long long>(*truth),
                  escaped.c_str());
      ++emitted;
    }
  }
  std::fprintf(stderr, "emitted %d labeled queries\n", emitted);
  return 0;
}
