// External-workload analysis: ingest SQL text written elsewhere (a DBA's
// suspect queries, a benchmark's template file, ...) through the bundled
// parser, then compare the optimizer's estimates against true execution —
// the estimator-quality loop that motivates constraint-aware generation in
// the first place.
//
// Build & run:  ./build/examples/external_workload_analysis

#include <cmath>
#include <cstdio>

#include "datasets/tpch_like.h"
#include "exec/executor.h"
#include "optimizer/cardinality_estimator.h"
#include "optimizer/cost_model.h"
#include "sql/parser.h"
#include "sql/render.h"

int main() {
  using namespace lsg;

  Database db = BuildTpchLike();
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator estimator(&db, &stats);
  CostModel cost_model(&estimator);
  Executor executor(&db);

  // A hand-written workload, exactly as a user would supply it.
  const char* workload[] = {
      "SELECT lineitem.l_id FROM lineitem WHERE lineitem.l_quantity < 10",
      "SELECT orders.o_orderkey FROM orders JOIN customer ON "
      "orders.o_custkey = customer.c_custkey WHERE customer.c_acctbal > 0",
      "SELECT part.p_brand, COUNT(part.p_size) FROM part GROUP BY "
      "part.p_brand HAVING COUNT(part.p_size) > 20",
      "SELECT supplier.s_name FROM supplier WHERE supplier.s_suppkey IN "
      "(SELECT lineitem.l_suppkey FROM lineitem WHERE "
      "lineitem.l_quantity >= 45)",
      "SELECT customer.c_name FROM customer WHERE customer.c_name LIKE "
      "'%er_1%' ORDER BY customer.c_name",
      "DELETE FROM lineitem WHERE lineitem.l_discount >= 0.08",
      "UPDATE orders SET o_orderstatus = 'F' WHERE orders.o_totalprice < "
      "1000",
  };

  std::printf("%-10s %-10s %-8s %-9s  query\n", "est.card", "true.card",
              "q-error", "est.cost");
  double worst_q = 1.0;
  for (const char* sql : workload) {
    auto ast = ParseSql(sql, db.catalog());
    if (!ast.ok()) {
      std::printf("PARSE FAIL: %s (%s)\n", sql, ast.status().ToString().c_str());
      continue;
    }
    double est = estimator.EstimateCardinality(*ast);
    auto truth = executor.Cardinality(*ast);
    if (!truth.ok()) {
      std::printf("EXEC FAIL: %s\n", sql);
      continue;
    }
    double t = static_cast<double>(*truth);
    double qerr = std::max((est + 1) / (t + 1), (t + 1) / (est + 1));
    worst_q = std::max(worst_q, qerr);
    std::printf("%-10.1f %-10.0f %-8.2f %-9.1f  %.80s%s\n", est, t, qerr,
                cost_model.EstimateCost(*ast), sql,
                std::string(sql).size() > 80 ? "..." : "");
  }
  std::printf("\nworst q-error across the workload: %.2f\n", worst_q);
  std::printf("(queries with big q-errors are exactly the ones a learned "
              "estimator needs training data for -> see "
              "examples/cardinality_training_data)\n");
  return 0;
}
