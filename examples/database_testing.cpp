// Database-testing workload (the paper's second motivating use case,
// §5 Cases 4-6): generate INSERT / UPDATE / DELETE statements whose
// affected-row counts satisfy a constraint, dry-run them against the
// engine, and verify the dry-run counts by actually applying the inserts
// to a scratch copy.
//
// Build & run:  ./build/examples/database_testing

#include <cstdio>

#include "core/generator.h"
#include "datasets/tpch_like.h"
#include "exec/dml_executor.h"

namespace {

void GenerateDml(const lsg::Database& db, lsg::QueryProfile profile,
                 const char* label, const lsg::Constraint& constraint) {
  using namespace lsg;
  LearnedSqlGenOptions options;
  options.train_epochs = 100;
  options.profile = profile;
  auto gen = LearnedSqlGen::Create(&db, options);
  if (!gen.ok()) {
    std::printf("create failed: %s\n", gen.status().ToString().c_str());
    return;
  }
  std::printf("\n-- %s statements satisfying %s --\n", label,
              constraint.ToString().c_str());
  if (Status st = (*gen)->Train(constraint); !st.ok()) {
    std::printf("train failed: %s\n", st.ToString().c_str());
    return;
  }
  auto report = (*gen)->GenerateSatisfied(5);
  if (!report.ok()) {
    std::printf("generate failed: %s\n", report.status().ToString().c_str());
    return;
  }
  DmlExecutor dml(&db);
  for (const GeneratedQuery& q : report->queries) {
    auto affected = dml.AffectedRows(q.ast);
    std::printf("  [rows~%-5.0f true=%-5s] %.100s%s\n", q.metric,
                affected.ok() ? std::to_string(*affected).c_str() : "?",
                q.sql.c_str(), q.sql.size() > 100 ? "..." : "");
  }
}

}  // namespace

int main() {
  using namespace lsg;

  Database db = BuildTpchLike();
  std::printf("TPC-H-shaped database: %zu tables, %zu rows\n", db.num_tables(),
              db.TotalRows());

  // DELETEs that would wipe a mid-sized slice (regression-test the
  // engine's bulk-delete path).
  GenerateDml(db, QueryProfile::DeleteOnly(), "DELETE",
              Constraint::Range(ConstraintMetric::kCardinality, 100, 800));

  // UPDATEs touching only a handful of rows (point-update path).
  GenerateDml(db, QueryProfile::UpdateOnly(), "UPDATE",
              Constraint::Range(ConstraintMetric::kCardinality, 1, 50));

  // INSERT ... SELECT with a large source (bulk-load path).
  GenerateDml(db, QueryProfile::InsertOnly(), "INSERT",
              Constraint::Range(ConstraintMetric::kCardinality, 50, 1000));

  // Round-trip sanity: applying a VALUES insert to a scratch copy grows the
  // table by exactly the dry-run count (1).
  Database scratch = BuildTpchLike();
  DmlExecutor dml(&scratch);
  QueryAst ins;
  ins.type = QueryType::kInsert;
  ins.insert = std::make_unique<InsertQuery>();
  ins.insert->table_idx = scratch.catalog().FindTable("region");
  ins.insert->values = {Value(int64_t{99}), Value("ATLANTIS")};
  size_t before = scratch.FindTable("region")->num_rows();
  if (dml.ApplyInsert(&scratch, ins).ok()) {
    std::printf("\nscratch-apply check: region grew %zu -> %zu rows\n", before,
                scratch.FindTable("region")->num_rows());
  }
  return 0;
}
